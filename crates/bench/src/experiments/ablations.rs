//! Design-choice ablations beyond the paper's figures (DESIGN.md §8).
//!
//! Every ablation is a [`PlannedExperiment`]: the grid-shaped ones
//! decompose into one job per grid point × configuration; the bespoke
//! `cooperative` and `victim` studies decompose into one job per row,
//! sharing their derived workloads through [`forhdc_runner::Lazy`].

use forhdc_cache::{BlockReplacement, SegmentReplacement};
use forhdc_core::{plan_periodic, System, SystemConfig};
use forhdc_runner::{point_seed, JobOutput, JobSpec, SimJob};
use forhdc_sim::{SchedulerKind, StripingMap};
use forhdc_workload::{ServerWorkloadSpec, SyntheticWorkload};

use crate::plan::{
    report_metrics, shared, sim_job, NamedConfig, PlannedExperiment, SharedWorkload,
};
use crate::table::{f1, f3, Table};
use crate::RunOptions;

fn web_workload(opts: RunOptions) -> SharedWorkload {
    shared(move || {
        ServerWorkloadSpec::web()
            .scale(opts.scale)
            .generate()
            .workload
    })
}

/// The calibrated synthetic (16-KB files, 128 streams) used by several
/// ablations, seeded per experiment point.
fn synth_workload(opts: RunOptions, file_blocks: u32, seed: u64) -> SharedWorkload {
    shared(move || {
        SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(file_blocks)
            .streams(128)
            .seed(seed)
            .build()
    })
}

/// Request schedulers under the web clone: LOOK (the paper's choice)
/// against FCFS, SSTF and C-LOOK.
pub fn plan_scheduler(opts: RunOptions) -> PlannedExperiment {
    const SCHEDULERS: [(&str, SchedulerKind); 4] = [
        ("LOOK", SchedulerKind::Look),
        ("FCFS", SchedulerKind::Fcfs),
        ("SSTF", SchedulerKind::Sstf),
        ("C-LOOK", SchedulerKind::Clook),
    ];
    let wl = web_workload(opts);
    let mut jobs = Vec::new();
    for (name, kind) in SCHEDULERS {
        let spec = JobSpec::new("ablation-sched", jobs.len(), name)
            .param("scale", opts.scale)
            .param("scheduler", name)
            .param("unit_kb", 64);
        jobs.push(sim_job(spec, &wl, opts.mode(), move || {
            SystemConfig::segm()
                .with_scheduler(kind)
                .with_striping_unit(64 * 1024)
        }));
    }
    PlannedExperiment {
        id: "ablation-sched",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-sched",
                "Scheduler ablation (web clone, Segm, 64-KB unit)",
                &["scheduler", "io_time_s", "mean_response_ms"],
            );
            for ((name, _), o) in SCHEDULERS.iter().zip(out) {
                t.push_row(vec![
                    name.to_string(),
                    f1(o.get("io_ns") / 1e9),
                    f3(o.get("mean_response_ns") / 1e6),
                ]);
            }
            t.note(
                "expected: LOOK/C-LOOK/SSTF clearly beat FCFS; LOOK avoids SSTF's starvation bias",
            );
            t
        }),
    }
}

/// Segment-replacement policies (LRU vs FIFO/random/round-robin, after
/// Soloviev 94 / Ganger 95 / Shriver 97) under the synthetic workload.
pub fn plan_segment_replacement(opts: RunOptions) -> PlannedExperiment {
    const POLICIES: [(&str, SegmentReplacement); 4] = [
        ("LRU", SegmentReplacement::Lru),
        ("FIFO", SegmentReplacement::Fifo),
        ("random", SegmentReplacement::Random),
        ("round-robin", SegmentReplacement::RoundRobin),
    ];
    let seed = point_seed("ablation-segrepl", 0);
    let wl = synth_workload(opts, 4, seed);
    let mut jobs = Vec::new();
    for (name, pol) in POLICIES {
        let spec = JobSpec::new("ablation-segrepl", jobs.len(), name)
            .param("requests", opts.synthetic_requests)
            .param("seed", seed)
            .param("policy", name);
        jobs.push(sim_job(spec, &wl, opts.mode(), move || {
            SystemConfig::segm().with_replacement(BlockReplacement::Mru, pol)
        }));
    }
    PlannedExperiment {
        id: "ablation-segrepl",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-segrepl",
                "Segment replacement ablation (synthetic 16-KB files)",
                &["policy", "io_time_s", "cache_hit_%"],
            );
            for ((name, _), o) in POLICIES.iter().zip(out) {
                t.push_row(vec![
                    name.to_string(),
                    f1(o.get("io_ns") / 1e9),
                    f1(100.0 * o.get("cache_hit_rate")),
                ]);
            }
            t
        }),
    }
}

/// Block-replacement for FOR: the paper's MRU against LRU.
pub fn plan_block_replacement(opts: RunOptions) -> PlannedExperiment {
    const FILE_BLOCKS: [u32; 3] = [2, 4, 8];
    let mut jobs = Vec::new();
    for (row, &file_blocks) in FILE_BLOCKS.iter().enumerate() {
        let seed = point_seed("ablation-blkrepl", row);
        let wl = synth_workload(opts, file_blocks, seed);
        for (name, blk) in [
            ("mru", BlockReplacement::Mru),
            ("lru", BlockReplacement::Lru),
        ] {
            let spec = JobSpec::new(
                "ablation-blkrepl",
                jobs.len(),
                format!("file={}KB {name}", file_blocks * 4),
            )
            .param("requests", opts.synthetic_requests)
            .param("file_blocks", file_blocks)
            .param("seed", seed)
            .param("policy", name);
            jobs.push(sim_job(spec, &wl, opts.mode(), move || {
                SystemConfig::for_().with_replacement(blk, SegmentReplacement::Lru)
            }));
        }
    }
    PlannedExperiment {
        id: "ablation-blkrepl",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-blkrepl",
                "FOR block replacement ablation (synthetic)",
                &["file_kb", "mru_io_s", "lru_io_s", "mru_hit_%", "lru_hit_%"],
            );
            for (row, &file_blocks) in FILE_BLOCKS.iter().enumerate() {
                let o = &out[row * 2..(row + 1) * 2];
                t.push_row(vec![
                    (file_blocks * 4).to_string(),
                    f1(o[0].get("io_ns") / 1e9),
                    f1(o[1].get("io_ns") / 1e9),
                    f1(100.0 * o[0].get("cache_hit_rate")),
                    f1(100.0 * o[1].get("cache_hit_rate")),
                ]);
            }
            t.note("the paper picks MRU for FOR's block pool (consumed blocks are dead at a controller cache)");
            t
        }),
    }
}

/// Segment-size row of Table 1: 128/256/512-KB segments with 27/13/6
/// segments, under the synthetic workload.
pub fn plan_segment_size(opts: RunOptions) -> PlannedExperiment {
    const SEG_KB: [u32; 3] = [128, 256, 512];
    let seed = point_seed("ablation-segsize", 0);
    let wl = synth_workload(opts, 4, seed);
    let mut jobs = Vec::new();
    for seg_kb in SEG_KB {
        let spec = JobSpec::new("ablation-segsize", jobs.len(), format!("seg={seg_kb}KB"))
            .param("requests", opts.synthetic_requests)
            .param("seed", seed)
            .param("segment_kb", seg_kb);
        jobs.push(sim_job(spec, &wl, opts.mode(), move || {
            SystemConfig::segm().with_segment_bytes(seg_kb * 1024)
        }));
    }
    PlannedExperiment {
        id: "ablation-segsize",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-segsize",
                "Segment size ablation (Segm, synthetic 16-KB files)",
                &["segment_kb", "segments", "io_time_s", "ra_blocks_per_op"],
            );
            for (seg_kb, o) in SEG_KB.iter().zip(out) {
                let media_ops = o.get("media_ops");
                let ra_per_op = if media_ops == 0.0 {
                    0.0
                } else {
                    o.get("ra_blocks") / media_ops
                };
                t.push_row(vec![
                    seg_kb.to_string(),
                    match seg_kb {
                        128 => "27",
                        256 => "13",
                        _ => "6",
                    }
                    .to_string(),
                    f1(o.get("io_ns") / 1e9),
                    f1(ra_per_op),
                ]);
            }
            t.note("bigger segments read ahead more per miss — worse for small-file servers");
            t
        }),
    }
}

/// Coalescing-probability sweep, including the paper's remark that
/// No-RA does not beat FOR even with perfect (100%) coalescing.
pub fn plan_coalescing(opts: RunOptions) -> PlannedExperiment {
    const PCTS: [u32; 6] = [0, 25, 50, 75, 87, 100];
    const CONFIGS: [NamedConfig; 3] = [
        ("segm", SystemConfig::segm),
        ("no_ra", SystemConfig::no_ra),
        ("for", SystemConfig::for_),
    ];
    let mut jobs = Vec::new();
    for (row, &pct) in PCTS.iter().enumerate() {
        let seed = point_seed("ablation-coalesce", row);
        let wl = shared(move || {
            SyntheticWorkload::builder()
                .requests(opts.synthetic_requests)
                .files(20_000)
                .file_blocks(4)
                .streams(128)
                .coalesce_prob(pct as f64 / 100.0)
                .seed(seed)
                .build()
        });
        for (name, cfg) in CONFIGS {
            let spec = JobSpec::new(
                "ablation-coalesce",
                jobs.len(),
                format!("coalesce={pct}% {name}"),
            )
            .param("requests", opts.synthetic_requests)
            .param("coalesce_pct", pct)
            .param("seed", seed)
            .param("config", name);
            jobs.push(sim_job(spec, &wl, opts.mode(), cfg));
        }
    }
    PlannedExperiment {
        id: "ablation-coalesce",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-coalesce",
                "Coalescing probability sweep (16-KB files, normalized to Segm at each point)",
                &["coalesce_%", "segm", "no_ra", "for"],
            );
            for (row, &pct) in PCTS.iter().enumerate() {
                let o = &out[row * 3..(row + 1) * 3];
                let segm = o[0].get("io_ns");
                t.push_row(vec![
                    pct.to_string(),
                    f3(1.0),
                    f3(o[1].get("io_ns") / segm),
                    f3(o[2].get("io_ns") / segm),
                ]);
            }
            t.note("paper: No-RA improves with coalescing but does not outperform FOR even at an unrealistic 100%");
            t
        }),
    }
}

/// Zoned recording as a sensitivity check: the paper simulates the
/// Ultrastar's *average* media rate; real zones make outer cylinders
/// ~22% faster. The comparison results must be insensitive to this
/// refinement.
pub fn plan_zoned(opts: RunOptions) -> PlannedExperiment {
    const MODES: [(&str, bool); 2] = [("uniform", false), ("zoned", true)];
    let seed = point_seed("ablation-zones", 0);
    let wl = synth_workload(opts, 4, seed);
    let mut jobs = Vec::new();
    for (mode, zoned) in MODES {
        for (name, base) in [
            ("segm", SystemConfig::segm as fn() -> SystemConfig),
            ("for", SystemConfig::for_),
        ] {
            let spec = JobSpec::new("ablation-zones", jobs.len(), format!("{mode} {name}"))
                .param("requests", opts.synthetic_requests)
                .param("seed", seed)
                .param("recording", mode)
                .param("config", name);
            jobs.push(sim_job(spec, &wl, opts.mode(), move || {
                let c = base();
                if zoned {
                    c.with_zoned_recording()
                } else {
                    c
                }
            }));
        }
    }
    PlannedExperiment {
        id: "ablation-zones",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-zones",
                "Uniform vs zoned media rate (synthetic 16-KB files)",
                &["recording", "segm_io_s", "for_io_s", "for_gain_%"],
            );
            for (row, (mode, _)) in MODES.iter().enumerate() {
                let o = &out[row * 2..(row + 1) * 2];
                let (segm, for_) = (o[0].get("io_ns"), o[1].get("io_ns"));
                t.push_row(vec![
                    mode.to_string(),
                    f1(segm / 1e9),
                    f1(for_ / 1e9),
                    f1(100.0 * (1.0 - for_ / segm)),
                ]);
            }
            t.note("our layouts start at cylinder 0 (outer = fast), so zoned runs are slightly faster in absolute terms; the FOR/Segm comparison is unchanged");
            t
        }),
    }
}

/// §2.2's redundancy option: the same 8 spindles as RAID-0 (8-wide
/// striping) vs RAID-10 (4 mirrored pairs), under read-mostly and
/// write-heavy synthetics.
pub fn plan_mirroring(opts: RunOptions) -> PlannedExperiment {
    const PCTS: [u32; 3] = [0, 20, 50];
    let mut jobs = Vec::new();
    for (row, &pct) in PCTS.iter().enumerate() {
        let seed = point_seed("ablation-mirror", row);
        let wl = shared(move || {
            SyntheticWorkload::builder()
                .requests(opts.synthetic_requests)
                .files(20_000)
                .file_blocks(4)
                .streams(128)
                .write_fraction(pct as f64 / 100.0)
                .seed(seed)
                .build()
        });
        for (name, mirrored) in [("raid0", false), ("raid10", true)] {
            let spec = JobSpec::new(
                "ablation-mirror",
                jobs.len(),
                format!("writes={pct}% {name}"),
            )
            .param("requests", opts.synthetic_requests)
            .param("write_pct", pct)
            .param("seed", seed)
            .param("config", name);
            jobs.push(sim_job(spec, &wl, opts.mode(), move || {
                if mirrored {
                    SystemConfig::segm().with_mirroring()
                } else {
                    SystemConfig::segm()
                }
            }));
        }
    }
    PlannedExperiment {
        id: "ablation-mirror",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-mirror",
                "RAID-0 vs RAID-10 on 8 spindles (Segm)",
                &["write_%", "raid0_io_s", "raid10_io_s", "raid10_penalty_%"],
            );
            for (row, &pct) in PCTS.iter().enumerate() {
                let o = &out[row * 2..(row + 1) * 2];
                let (raid0, raid10) = (o[0].get("io_ns"), o[1].get("io_ns"));
                t.push_row(vec![
                    pct.to_string(),
                    f1(raid0 / 1e9),
                    f1(raid10 / 1e9),
                    f1((raid10 / raid0 - 1.0) * 100.0),
                ]);
            }
            t.note("mirroring halves the stripe width but serves reads from either member; the write penalty grows with the write fraction");
            t
        }),
    }
}

/// §6.1's periodic-sync claim: "we have determined the effect of such
/// periodic syncs on overall throughput to be negligible (< 1%),
/// assuming periods of 30 seconds" — measured on the web clone.
pub fn plan_flush_period(opts: RunOptions) -> PlannedExperiment {
    const PERIODS_S: [u64; 3] = [120, 30, 10];
    let wl = web_workload(opts);
    let cfg = || {
        SystemConfig::segm()
            .with_hdc(2 * 1024 * 1024)
            .with_striping_unit(64 * 1024)
    };
    let mut jobs = Vec::new();
    let spec = JobSpec::new("ablation-flush", 0, "end-of-run")
        .param("scale", opts.scale)
        .param("flush_period_s", "none");
    jobs.push(sim_job(spec, &wl, opts.mode(), cfg));
    for secs in PERIODS_S {
        let spec = JobSpec::new("ablation-flush", jobs.len(), format!("period={secs}s"))
            .param("scale", opts.scale)
            .param("flush_period_s", secs);
        jobs.push(sim_job(spec, &wl, opts.mode(), move || {
            cfg().with_hdc_flush_period(forhdc_sim::SimDuration::from_secs(secs))
        }));
    }
    PlannedExperiment {
        id: "ablation-flush",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-flush",
                "Periodic flush_hdc() cost (web clone, Segm+HDC, 64-KB unit)",
                &["flush_period_s", "io_time_s", "flushed_blocks", "cost_%"],
            );
            let lazy = out[0].get("io_ns");
            t.push_row(vec![
                "end-of-run".into(),
                f1(lazy / 1e9),
                (out[0].get("hdc_flushed") as u64).to_string(),
                f3(0.0),
            ]);
            for (secs, o) in PERIODS_S.iter().zip(&out[1..]) {
                t.push_row(vec![
                    secs.to_string(),
                    f1(o.get("io_ns") / 1e9),
                    (o.get("hdc_flushed") as u64).to_string(),
                    f3((o.get("io_ns") / lazy - 1.0) * 100.0),
                ]);
            }
            t.note("paper: 30-second periods cost < 1%");
            t
        }),
    }
}

/// The §5 deployment story: HDC planned per period from the previous
/// period's history, against the §6.1 perfect-knowledge plan.
pub fn plan_periodic_planner(opts: RunOptions) -> PlannedExperiment {
    const PERIODS: [usize; 3] = [2, 4, 8];
    let wl = web_workload(opts);
    let cfg = || {
        SystemConfig::segm()
            .with_hdc(2 * 1024 * 1024)
            .with_striping_unit(64 * 1024)
    };
    let mut jobs = Vec::new();
    let spec = JobSpec::new("ablation-periodic", 0, "no-hdc")
        .param("scale", opts.scale)
        .param("plan", "no-hdc");
    jobs.push(sim_job(spec, &wl, opts.mode(), || {
        SystemConfig::segm().with_striping_unit(64 * 1024)
    }));
    let spec = JobSpec::new("ablation-periodic", 1, "perfect")
        .param("scale", opts.scale)
        .param("plan", "perfect");
    jobs.push(sim_job(spec, &wl, opts.mode(), cfg));
    for periods in PERIODS {
        let spec = JobSpec::new(
            "ablation-periodic",
            jobs.len(),
            format!("history/{periods}"),
        )
        .param("scale", opts.scale)
        .param("plan", format!("history/{periods}"));
        let wl = wl.clone();
        let shards = opts.shards.max(1);
        jobs.push(SimJob::new(spec, move || {
            // Approximate the periodic deployment: plan from the first
            // (periods − 1)/periods of the trace's history, replay whole.
            let wl = wl.get();
            let cfg = cfg();
            let striping = StripingMap::new(cfg.array.disks, cfg.array.striping_unit_blocks());
            let plans = plan_periodic(&wl.trace, &striping, cfg.hdc_blocks(), periods);
            let last = plans.last().expect("at least one period").clone();
            report_metrics(&System::with_plan(cfg, wl, last).with_shards(shards).run())
        }));
    }
    PlannedExperiment {
        id: "ablation-periodic",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-periodic",
                "HDC planning: perfect knowledge vs history-based periods (web clone)",
                &["plan", "io_time_s", "hdc_hit_%"],
            );
            t.push_row(vec![
                "no-hdc".into(),
                f1(out[0].get("io_ns") / 1e9),
                f1(0.0),
            ]);
            t.push_row(vec![
                "perfect".into(),
                f1(out[1].get("io_ns") / 1e9),
                f1(100.0 * out[1].get("hdc_hit_rate")),
            ]);
            for (periods, o) in PERIODS.iter().zip(&out[2..]) {
                t.push_row(vec![
                    format!("history/{periods}"),
                    f1(o.get("io_ns") / 1e9),
                    f1(100.0 * o.get("hdc_hit_rate")),
                ]);
            }
            t.note("history-based plans approach the perfect-knowledge plan as history accumulates (stable popularity)");
            t
        }),
    }
}

/// Scheduler ablation on the serial path (same jobs, same assembly).
pub fn scheduler(opts: RunOptions) -> Table {
    plan_scheduler(opts).run_serial()
}

/// Segment-replacement ablation on the serial path.
pub fn segment_replacement(opts: RunOptions) -> Table {
    plan_segment_replacement(opts).run_serial()
}

/// Block-replacement ablation on the serial path.
pub fn block_replacement(opts: RunOptions) -> Table {
    plan_block_replacement(opts).run_serial()
}

/// Segment-size ablation on the serial path.
pub fn segment_size(opts: RunOptions) -> Table {
    plan_segment_size(opts).run_serial()
}

/// Coalescing ablation on the serial path.
pub fn coalescing(opts: RunOptions) -> Table {
    plan_coalescing(opts).run_serial()
}

/// Zoned-recording ablation on the serial path.
pub fn zoned(opts: RunOptions) -> Table {
    plan_zoned(opts).run_serial()
}

/// Mirroring ablation on the serial path.
pub fn mirroring(opts: RunOptions) -> Table {
    plan_mirroring(opts).run_serial()
}

/// Flush-period ablation on the serial path.
pub fn flush_period(opts: RunOptions) -> Table {
    plan_flush_period(opts).run_serial()
}

/// Periodic-planner ablation on the serial path.
pub fn periodic_planner(opts: RunOptions) -> Table {
    plan_periodic_planner(opts).run_serial()
}

/// Builds the "one-disk heat" workload of the cooperative ablation:
/// hot blocks confined to disk 0's striping units.
fn coop_hot_disk_workload() -> forhdc_workload::Workload {
    use forhdc_sim::LogicalBlock;
    use forhdc_workload::{Trace, TraceRequest, Workload};

    let layout = forhdc_layout::LayoutBuilder::new().build(&vec![4u32; 30_000]);
    let mut reqs = Vec::new();
    for _ in 0..8u64 {
        for i in 0..1_200u64 {
            let unit = (i / 32) * 8;
            reqs.push(TraceRequest {
                start: LogicalBlock::new(unit * 32 + i % 32),
                nblocks: 1,
                kind: forhdc_sim::ReadWrite::Read,
            });
        }
    }
    for i in 0..3_000u64 {
        reqs.push(TraceRequest {
            start: LogicalBlock::new(40_000 + i * 29 % 70_000),
            nblocks: 1,
            kind: forhdc_sim::ReadWrite::Read,
        });
    }
    Workload {
        name: "hot-disk".into(),
        layout,
        trace: Trace::new(reqs),
        streams: 64,
    }
}

/// §5's cooperative-caching remark: per-disk top-K pinning vs a
/// global plan whose overflow lands in sibling controllers, under (a)
/// spatially balanced heat (the common case — cooperation is ~free) and
/// (b) heat concentrated on one disk (cooperation pins what the home
/// controller cannot hold). One job per (heat, planner) pair.
pub fn plan_cooperative(opts: RunOptions) -> PlannedExperiment {
    const HDC: u64 = 1 << 20;
    const HEATS: [&str; 2] = ["balanced", "one-disk"];
    // (a) balanced: the calibrated synthetic.
    let balanced = shared(move || {
        SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(4)
            .zipf_alpha(0.8)
            .streams(128)
            .seed(point_seed("ablation-coop", 0))
            .build()
    });
    // (b) one-disk heat: hot blocks confined to disk 0's units.
    let hot_disk = shared(coop_hot_disk_workload);
    let mut jobs = Vec::new();
    for (heat, wl) in [("balanced", &balanced), ("one-disk", &hot_disk)] {
        for coop in [false, true] {
            let spec = JobSpec::new(
                "ablation-coop",
                jobs.len(),
                format!("{heat} {}", if coop { "coop" } else { "per-disk" }),
            )
            .param("requests", opts.synthetic_requests)
            .param("heat", heat)
            .param("coop", coop);
            let wl = wl.clone();
            jobs.push(SimJob::new(spec, move || {
                let cfg = if coop {
                    SystemConfig::segm().with_hdc(HDC).with_cooperative_hdc()
                } else {
                    SystemConfig::segm().with_hdc(HDC)
                };
                let r = System::new(cfg, wl.get())
                    .with_shards(opts.shards.max(1))
                    .run();
                JobOutput::new()
                    .metric("io_ns", r.io_time.as_nanos() as f64)
                    .metric("coop_hits", r.coop_hits as f64)
            }));
        }
    }
    PlannedExperiment {
        id: "ablation-coop",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-coop",
                "Per-disk vs cooperative HDC planning (Segm, 1 MB HDC/disk)",
                &["heat", "per_disk_io_s", "coop_io_s", "coop_sibling_hits"],
            );
            for (row, heat) in HEATS.iter().enumerate() {
                let (per_disk, coop) = (&out[row * 2], &out[row * 2 + 1]);
                t.push_row(vec![
                    heat.to_string(),
                    f1(per_disk.get("io_ns") / 1e9),
                    f1(coop.get("io_ns") / 1e9),
                    (coop.get("coop_hits") as u64).to_string(),
                ]);
            }
            t.note("the paper kept per-disk pinning for simplicity; cooperation only pays when the hot set is spatially concentrated beyond one controller's memory");
            t
        }),
    }
}

/// The cooperative ablation on the serial path.
pub fn cooperative(opts: RunOptions) -> Table {
    plan_cooperative(opts).run_serial()
}

/// HDC region size of the victim ablation (bytes per disk).
const VICTIM_HDC: u64 = 2 * 1024 * 1024;

/// Builds the derived victim-cache workload: an application stream
/// whose working set overflows the host cache — the regime where a
/// victim cache earns its keep.
fn victim_workload(opts: RunOptions) -> forhdc_core::VictimWorkload {
    use forhdc_core::{build_victim_workload, VictimConfig};
    use forhdc_host::pipeline::FileAccess;
    use forhdc_layout::{FileId, LayoutBuilder};
    use forhdc_sim::{ReadWrite, SimDuration, SimTime};
    use forhdc_workload::ZipfSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let files = 30_000usize;
    let layout = LayoutBuilder::new().seed(21).build(&vec![4u32; files]);
    let zipf = ZipfSampler::new(files, 0.75);
    let mut rng = StdRng::seed_from_u64(22);
    let n = (60_000.0 * opts.scale.max(0.02)) as u64;
    let accesses: Vec<FileAccess> = (0..n.max(2_000))
        .map(|i| FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(i * 100),
            file: FileId::new(zipf.sample(&mut rng) as u32),
            offset: 0,
            nblocks: 4,
            kind: ReadWrite::Read,
        })
        .collect();
    let striping = forhdc_sim::StripingMap::new(8, 32);
    build_victim_workload(
        &accesses,
        &layout,
        VictimConfig {
            buffer_blocks: 8_192,
            hdc_blocks_per_disk: (VICTIM_HDC / 4096) as u32,
            striping,
            streams: 64,
        },
    )
}

/// §5's two example uses of HDC head to head on the same derived
/// workload: the paper's top-miss pinning (static, perfect knowledge)
/// against the array-wide victim cache (dynamic pin/unpin), plus the
/// no-HDC baseline. One job per mode, sharing one lazily derived
/// workload; job 0 also emits the derivation stats for the note.
pub fn plan_victim(opts: RunOptions) -> PlannedExperiment {
    use forhdc_core::HdcPlan;

    let vw = std::sync::Arc::new(forhdc_runner::Lazy::new(move || victim_workload(opts)));
    const MODES: [&str; 3] = ["no-hdc", "top-miss", "victim"];
    let jobs = MODES
        .iter()
        .enumerate()
        .map(|(point, &mode)| {
            let spec = JobSpec::new("ablation-victim", point, mode.to_string())
                .param("scale", opts.scale)
                .param("mode", mode);
            let vw = vw.clone();
            SimJob::new(spec, move || {
                let vw = vw.get();
                let r = match mode {
                    "no-hdc" => System::new(SystemConfig::segm(), &vw.workload)
                        .with_shards(opts.shards.max(1))
                        .run(),
                    "top-miss" => {
                        System::new(SystemConfig::segm().with_hdc(VICTIM_HDC), &vw.workload)
                            .with_shards(opts.shards.max(1))
                            .run()
                    }
                    _ => System::with_plan(
                        SystemConfig::segm().with_hdc(VICTIM_HDC),
                        &vw.workload,
                        HdcPlan::empty(8),
                    )
                    .with_hdc_commands(vw.commands.clone())
                    .with_shards(opts.shards.max(1))
                    .run(),
                };
                let mut o = JobOutput::new()
                    .metric("io_ns", r.io_time.as_nanos() as f64)
                    .metric("hdc_hit_rate", r.hdc_hit_rate());
                if mode == "no-hdc" {
                    o = o
                        .metric("buffer_hit_rate", vw.stats.buffer_hit_rate)
                        .metric("pins", vw.stats.pins as f64)
                        .metric("unpins", vw.stats.unpins as f64)
                        .metric("writebacks", vw.stats.writebacks as f64);
                }
                o
            })
        })
        .collect();
    PlannedExperiment {
        id: "ablation-victim",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "ablation-victim",
                "HDC uses: none vs top-miss pinning vs victim cache (derived workload)",
                &["mode", "io_time_s", "hdc_hit_%"],
            );
            for (row, &mode) in MODES.iter().enumerate() {
                let o = &out[row];
                let hit = if mode == "no-hdc" {
                    0.0
                } else {
                    100.0 * o.get("hdc_hit_rate")
                };
                t.push_row(vec![mode.to_string(), f1(o.get("io_ns") / 1e9), f1(hit)]);
            }
            t.note(format!(
                "derivation: buffer hit {:.0}%, {} pins, {} unpins, {} write-backs",
                100.0 * out[0].get("buffer_hit_rate"),
                out[0].get("pins") as u64,
                out[0].get("unpins") as u64,
                out[0].get("writebacks") as u64
            ));
            t.note("the victim cache adapts to the live miss stream; top-miss pinning needs (perfect) profile knowledge");
            t
        }),
    }
}

/// The victim ablation on the serial path.
pub fn victim(opts: RunOptions) -> Table {
    plan_victim(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions {
            scale: 0.015,
            synthetic_requests: 500,
            ..RunOptions::default()
        }
    }

    #[test]
    fn look_beats_fcfs() {
        let t = scheduler(quick());
        let io = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(
            io("LOOK") <= io("FCFS"),
            "LOOK {} vs FCFS {}",
            io("LOOK"),
            io("FCFS")
        );
    }

    #[test]
    fn segment_policies_all_run() {
        let t = segment_replacement(quick());
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn block_replacement_has_both_policies() {
        let t = block_replacement(quick());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let mru: f64 = row[1].parse().unwrap();
            let lru: f64 = row[2].parse().unwrap();
            assert!(mru > 0.0 && lru > 0.0);
        }
    }

    #[test]
    fn bigger_segments_read_ahead_more() {
        let t = segment_size(quick());
        let ra: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(
            ra[2] > ra[0],
            "512-KB segments should read ahead more: {ra:?}"
        );
    }

    #[test]
    fn perfect_coalescing_does_not_save_no_ra() {
        let t = coalescing(quick());
        let last = t.rows.last().unwrap();
        let no_ra: f64 = last[2].parse().unwrap();
        let for_: f64 = last[3].parse().unwrap();
        assert!(
            for_ <= no_ra * 1.05,
            "FOR {for_} vs No-RA {no_ra} at 100% coalescing"
        );
    }

    #[test]
    fn periodic_planner_improves_with_history() {
        let t = periodic_planner(quick());
        assert!(t.rows.len() >= 4);
        let hit = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .parse()
                .unwrap()
        };
        assert!(hit("perfect") >= hit("history/2") - 0.5);
    }

    #[test]
    fn ported_bespoke_plans_match_serial_byte_for_byte() {
        let runner = forhdc_runner::Runner::new(4).quiet(true);
        for plan in [plan_cooperative(quick()), plan_victim(quick())] {
            let serial = plan.run_serial();
            let (parallel, stats) = plan.run_with(&runner);
            assert!(stats.failures.is_empty(), "{}", plan.id);
            assert_eq!(
                serial.to_csv(),
                parallel.expect("table").to_csv(),
                "{}",
                plan.id
            );
        }
    }
}
