//! Table 1 and Figure 1: parameter inventory and the fragmentation /
//! sequential-read model.
//!
//! All three artifacts are [`PlannedExperiment`]s: jobs emit the raw
//! quantities (exact in `f64` at simulation scale, so the result cache
//! round-trips them bit-exactly) and all formatting happens in the
//! assembly, keeping parallel and serial output byte-identical.

use forhdc_analytic::expected_sequential_run;
use forhdc_layout::{frag::measure_runs, LayoutBuilder};
use forhdc_runner::{JobOutput, JobSpec, SimJob};
use forhdc_sim::ArrayConfig;

use crate::plan::PlannedExperiment;
use crate::table::{f1, f3, Table};

/// Table 1: the simulation parameters and their defaults. One job
/// reads the raw quantities off [`ArrayConfig`]; the assembly formats
/// them.
pub fn plan_table1() -> PlannedExperiment {
    let spec = JobSpec::new("table1", 0, "parameters".to_string());
    let job = SimJob::new(spec, || {
        let a = ArrayConfig::default();
        JobOutput::new()
            .metric("disks", a.disks as f64)
            .metric("capacity_bytes", a.disk.geometry.capacity_bytes() as f64)
            .metric(
                "avg_seek_ms",
                a.disk.seek.average_seek_ms(a.disk.geometry.cylinders()),
            )
            .metric("media_rate", a.disk.media_rate as f64)
            .metric("bus_rate", a.bus_rate as f64)
            .metric("cache_bytes", a.disk.cache_bytes as f64)
            .metric("block_bytes", a.disk.block_bytes() as f64)
            .metric("segment_bytes", a.disk.segment_bytes as f64)
            .metric("segments", a.disk.segments as f64)
            .metric("bitmap_bytes", a.disk.bitmap_bytes() as f64)
            .metric("unit_bytes", a.striping_unit_bytes as f64)
    });
    PlannedExperiment {
        id: "table1",
        jobs: vec![job],
        assemble: Box::new(|out| {
            let o = &out[0];
            let mut t = Table::new(
                "table1",
                "Main parameters and their default values",
                &["parameter", "default"],
            );
            let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
            row("number of disks", (o.get("disks") as u64).to_string());
            row(
                "disk size",
                format!("{:.1} GB", o.get("capacity_bytes") / 1e9),
            );
            row(
                "average disk seek time",
                format!("{:.2} ms", o.get("avg_seek_ms")),
            );
            row("average rotational latency", "2.0 ms (15000 rpm)".into());
            row(
                "raw disk transfer rate",
                format!("{} MB/s", o.get("media_rate") as u64 / 1_000_000),
            );
            row(
                "disk controller interface",
                format!(
                    "Ultra160 ({} MB/s shared)",
                    o.get("bus_rate") as u64 / 1_000_000
                ),
            );
            row(
                "disk controller cache size",
                format!("{} MB", o.get("cache_bytes") as u64 / (1 << 20)),
            );
            row(
                "disk block size",
                format!("{} KB", o.get("block_bytes") as u64 / 1024),
            );
            row(
                "segment size / count",
                format!(
                    "{} KB x {}",
                    o.get("segment_bytes") as u64 / 1024,
                    o.get("segments") as u64
                ),
            );
            row(
                "disk-resident bitmap",
                format!("{} KB", o.get("bitmap_bytes") as u64 / 1024),
            );
            row(
                "striping unit (synthetic default)",
                format!("{} KB", o.get("unit_bytes") as u64 / 1024),
            );
            t.note("paper Table 1: 8 disks, 18 GB, 3.4 ms, 2.0 ms, 54 MB/s, Ultra160, 4 MB, 4 KB, 128/256/512 KB x 27/13/6, 546 KB bitmap");
            t
        }),
    }
}

/// Table 1 on the serial path.
pub fn table1() -> Table {
    plan_table1().run_serial()
}

/// The fragmentation grid of Figure 1 (percent).
const FIG1_PCTS: [u32; 14] = [0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20];

/// The file sizes of Figure 1 (blocks).
const FIG1_SIZES: [u32; 5] = [32, 16, 8, 4, 2];

/// Figure 1: average sequential read as a function of the
/// fragmentation degree, for 2–32-block files. Empirical (measured on
/// a generated layout) and analytic (`f / (1 + (f−1)q)`) side by
/// side. One job per fragmentation degree.
pub fn plan_fig1() -> PlannedExperiment {
    let jobs = FIG1_PCTS
        .iter()
        .enumerate()
        .map(|(point, &pct)| {
            let spec = JobSpec::new("fig1", point, format!("frag={pct}%"))
                .param("pct", pct)
                .param("files", 4000);
            SimJob::new(spec, move || {
                let q = pct as f64 / 100.0;
                let mut o = JobOutput::new();
                for s in FIG1_SIZES {
                    let map = LayoutBuilder::new()
                        .fragmentation(q)
                        .seed(0xF16_0001 + s as u64)
                        .build(&vec![s; 4000]);
                    o = o
                        .metric(format!("emp{s}"), measure_runs(&map).mean_run_blocks)
                        .metric(format!("model{s}"), expected_sequential_run(s, q));
                }
                o
            })
        })
        .collect();
    PlannedExperiment {
        id: "fig1",
        jobs,
        assemble: Box::new(|out| {
            let mut headers = vec!["frag_%".to_string()];
            for s in FIG1_SIZES {
                headers.push(format!("{s}blk"));
                headers.push(format!("{s}blk_model"));
            }
            let mut t = Table::new(
                "fig1",
                "Average sequential read (blocks) vs fragmentation degree",
                &headers.iter().map(String::as_str).collect::<Vec<_>>(),
            );
            for (row, &pct) in FIG1_PCTS.iter().enumerate() {
                let o = &out[row];
                let mut cells = vec![pct.to_string()];
                for s in FIG1_SIZES {
                    cells.push(f1(o.get(&format!("emp{s}"))));
                    cells.push(f1(o.get(&format!("model{s}"))));
                }
                t.push_row(cells);
            }
            t.note("paper: 5% fragmentation cuts 32-block files to ~12 and 8-block files to ~6 sequential blocks");
            t
        }),
    }
}

/// Figure 1 on the serial path.
pub fn fig1() -> Table {
    plan_fig1().run_serial()
}

/// The file sizes of the model cross-check (blocks).
const MODEL_CHECK_SIZES: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Cross-validation: the analytic Figure 3 prediction (built purely
/// from the paper's closed forms) against the simulator's
/// measurement. One job per file size, each running the Segm baseline
/// and the FOR system.
pub fn plan_model_check(opts: crate::RunOptions) -> PlannedExperiment {
    use forhdc_analytic::{predict_fig3, utilization::ServiceParams};
    use forhdc_core::{System, SystemConfig};
    use forhdc_workload::SyntheticWorkload;

    let jobs = MODEL_CHECK_SIZES
        .iter()
        .enumerate()
        .map(|(point, &file_blocks)| {
            let spec = JobSpec::new("model-check", point, format!("file={file_blocks}blk"))
                .param("file_blocks", file_blocks)
                .param("requests", opts.synthetic_requests);
            SimJob::new(spec, move || {
                let params = ServiceParams::ultrastar_36z15();
                let pred = predict_fig3(file_blocks, 0.87, 32, &params).for_normalized();
                let wl = SyntheticWorkload::builder()
                    .requests(opts.synthetic_requests)
                    .files(20_000)
                    .file_blocks(file_blocks)
                    .streams(128)
                    .zipf_alpha(0.0) // the closed form has no reuse term
                    .seed(42)
                    .build();
                let segm = System::new(SystemConfig::segm(), &wl)
                    .with_shards(opts.shards.max(1))
                    .run();
                let for_ = System::new(SystemConfig::for_(), &wl)
                    .with_shards(opts.shards.max(1))
                    .run();
                JobOutput::new()
                    .metric("pred", pred)
                    .metric("sim", for_.normalized_io_time(&segm))
            })
        })
        .collect();
    PlannedExperiment {
        id: "model-check",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "model-check",
                "Figure 3: analytic prediction vs simulation (FOR normalized I/O time)",
                &["file_kb", "predicted", "simulated", "abs_err"],
            );
            for (row, &file_blocks) in MODEL_CHECK_SIZES.iter().enumerate() {
                let (pred, sim) = (out[row].get("pred"), out[row].get("sim"));
                t.push_row(vec![
                    (file_blocks * 4).to_string(),
                    f3(pred),
                    f3(sim),
                    f3((pred - sim).abs()),
                ]);
            }
            t.note("the first-order model ignores queueing, LOOK seek shortening and cache reuse; agreement within ~0.1 normalized units closes the loop between the paper's analysis and the simulator");
            t
        }),
    }
}

/// The model cross-check on the serial path.
pub fn model_check(opts: crate::RunOptions) -> Table {
    plan_model_check(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        let find = |k: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == k)
                .unwrap_or_else(|| panic!("missing row {k}"))[1]
                .clone()
        };
        assert_eq!(find("number of disks"), "8");
        assert!(find("disk size").starts_with("18."));
        assert_eq!(find("disk controller cache size"), "4 MB");
        assert_eq!(find("segment size / count"), "128 KB x 27");
        // Average seek within 10% of the nominal 3.4 ms.
        let seek: f64 = find("average disk seek time")
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((seek - 3.4).abs() < 0.35, "avg seek {seek}");
    }

    #[test]
    fn fig1_empirical_tracks_model() {
        let t = fig1();
        // Row at 5% fragmentation: empirical within 10% of the model.
        let row = t.rows.iter().find(|r| r[0] == "5").unwrap();
        for i in (1..row.len()).step_by(2) {
            let emp: f64 = row[i].parse().unwrap();
            let model: f64 = row[i + 1].parse().unwrap();
            assert!((emp - model).abs() / model < 0.10, "{emp} vs {model}");
        }
    }

    #[test]
    fn fig1_monotone_in_fragmentation() {
        let t = fig1();
        let col1: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in col1.windows(2) {
            assert!(w[1] <= w[0] + 0.5, "sequential read should shrink: {w:?}");
        }
    }

    #[test]
    fn ported_micro_plans_match_serial_byte_for_byte() {
        let runner = forhdc_runner::Runner::new(4).quiet(true);
        let opts = crate::RunOptions {
            synthetic_requests: 400,
            ..crate::RunOptions::default()
        };
        for plan in [plan_table1(), plan_fig1(), plan_model_check(opts)] {
            let serial = plan.run_serial();
            let (parallel, stats) = plan.run_with(&runner);
            assert!(stats.failures.is_empty(), "{}", plan.id);
            assert_eq!(
                serial.to_csv(),
                parallel.expect("table").to_csv(),
                "{}",
                plan.id
            );
        }
    }
}
