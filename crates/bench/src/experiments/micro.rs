//! Table 1 and Figure 1: parameter inventory and the fragmentation /
//! sequential-read model.

use forhdc_analytic::expected_sequential_run;
use forhdc_layout::{frag::measure_runs, LayoutBuilder};
use forhdc_sim::ArrayConfig;

use crate::table::{f1, f3, Table};

/// Table 1: the simulation parameters and their defaults.
pub fn table1() -> Table {
    let a = ArrayConfig::default();
    let mut t = Table::new(
        "table1",
        "Main parameters and their default values",
        &["parameter", "default"],
    );
    let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
    row("number of disks", a.disks.to_string());
    row(
        "disk size",
        format!("{:.1} GB", a.disk.geometry.capacity_bytes() as f64 / 1e9),
    );
    row(
        "average disk seek time",
        format!(
            "{:.2} ms",
            a.disk.seek.average_seek_ms(a.disk.geometry.cylinders())
        ),
    );
    row("average rotational latency", "2.0 ms (15000 rpm)".into());
    row(
        "raw disk transfer rate",
        format!("{} MB/s", a.disk.media_rate / 1_000_000),
    );
    row(
        "disk controller interface",
        format!("Ultra160 ({} MB/s shared)", a.bus_rate / 1_000_000),
    );
    row(
        "disk controller cache size",
        format!("{} MB", a.disk.cache_bytes / (1 << 20)),
    );
    row(
        "disk block size",
        format!("{} KB", a.disk.block_bytes() / 1024),
    );
    row(
        "segment size / count",
        format!("{} KB x {}", a.disk.segment_bytes / 1024, a.disk.segments),
    );
    row(
        "disk-resident bitmap",
        format!("{} KB", a.disk.bitmap_bytes() / 1024),
    );
    row(
        "striping unit (synthetic default)",
        format!("{} KB", a.striping_unit_bytes / 1024),
    );
    t.note("paper Table 1: 8 disks, 18 GB, 3.4 ms, 2.0 ms, 54 MB/s, Ultra160, 4 MB, 4 KB, 128/256/512 KB x 27/13/6, 546 KB bitmap");
    t
}

/// Figure 1: average sequential read as a function of the fragmentation
/// degree, for 2–32-block files. Empirical (measured on a generated
/// layout) and analytic (`f / (1 + (f−1)q)`) side by side.
pub fn fig1() -> Table {
    let sizes = [32u32, 16, 8, 4, 2];
    let mut headers = vec!["frag_%".to_string()];
    for s in sizes {
        headers.push(format!("{s}blk"));
        headers.push(format!("{s}blk_model"));
    }
    let mut t = Table::new(
        "fig1",
        "Average sequential read (blocks) vs fragmentation degree",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for pct in [0u32, 1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20] {
        let q = pct as f64 / 100.0;
        let mut row = vec![pct.to_string()];
        for s in sizes {
            let map = LayoutBuilder::new()
                .fragmentation(q)
                .seed(0xF16_0001 + s as u64)
                .build(&vec![s; 4000]);
            row.push(f1(measure_runs(&map).mean_run_blocks));
            row.push(f1(expected_sequential_run(s, q)));
        }
        t.push_row(row);
    }
    t.note("paper: 5% fragmentation cuts 32-block files to ~12 and 8-block files to ~6 sequential blocks");
    t
}

/// Cross-validation: the analytic Figure 3 prediction (built purely
/// from the paper's closed forms) against the simulator's measurement.
pub fn model_check(opts: crate::RunOptions) -> Table {
    use forhdc_analytic::{predict_fig3, utilization::ServiceParams};
    use forhdc_core::{System, SystemConfig};
    use forhdc_workload::SyntheticWorkload;

    let mut t = Table::new(
        "model-check",
        "Figure 3: analytic prediction vs simulation (FOR normalized I/O time)",
        &["file_kb", "predicted", "simulated", "abs_err"],
    );
    let params = ServiceParams::ultrastar_36z15();
    for file_blocks in [1u32, 2, 4, 8, 16, 32] {
        let pred = predict_fig3(file_blocks, 0.87, 32, &params).for_normalized();
        let wl = SyntheticWorkload::builder()
            .requests(opts.synthetic_requests)
            .files(20_000)
            .file_blocks(file_blocks)
            .streams(128)
            .zipf_alpha(0.0) // the closed form has no reuse term
            .seed(42)
            .build();
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let for_ = System::new(SystemConfig::for_(), &wl).run();
        let sim = for_.normalized_io_time(&segm);
        t.push_row(vec![
            (file_blocks * 4).to_string(),
            f3(pred),
            f3(sim),
            f3((pred - sim).abs()),
        ]);
    }
    t.note("the first-order model ignores queueing, LOOK seek shortening and cache reuse; agreement within ~0.1 normalized units closes the loop between the paper's analysis and the simulator");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        let find = |k: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == k)
                .unwrap_or_else(|| panic!("missing row {k}"))[1]
                .clone()
        };
        assert_eq!(find("number of disks"), "8");
        assert!(find("disk size").starts_with("18."));
        assert_eq!(find("disk controller cache size"), "4 MB");
        assert_eq!(find("segment size / count"), "128 KB x 27");
        // Average seek within 10% of the nominal 3.4 ms.
        let seek: f64 = find("average disk seek time")
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((seek - 3.4).abs() < 0.35, "avg seek {seek}");
    }

    #[test]
    fn fig1_empirical_tracks_model() {
        let t = fig1();
        // Row at 5% fragmentation: empirical within 10% of the model.
        let row = t.rows.iter().find(|r| r[0] == "5").unwrap();
        for i in (1..row.len()).step_by(2) {
            let emp: f64 = row[i].parse().unwrap();
            let model: f64 = row[i + 1].parse().unwrap();
            assert!((emp - model).abs() / model < 0.10, "{emp} vs {model}");
        }
    }

    #[test]
    fn fig1_monotone_in_fragmentation() {
        let t = fig1();
        let col1: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in col1.windows(2) {
            assert!(w[1] <= w[0] + 0.5, "sequential read should shrink: {w:?}");
        }
    }
}
