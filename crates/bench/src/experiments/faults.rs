//! Beyond-the-paper robustness artifacts: the `fig-faults`
//! degraded-mode sweep and the hidden `selftest-panic` runner
//! diagnostic.
//!
//! `fig-faults` replays one write-heavy synthetic workload against
//! seeded fault schedules of rising media/bus error rates (DESIGN.md
//! §6.4). Each configuration column is that configuration's I/O time
//! normalized to its own fault-free run, so 1.25 reads "25% slower at
//! this fault rate". The trailing columns summarize the degraded-mode
//! outcome for the full system (FOR+HDC): the share of requests that
//! completed as errors, and the dirty blocks lost to power loss and
//! failed flushes.
//!
//! `selftest-panic` is never part of `repro all`: its middle job
//! panics by design so CI (and suspicious operators) can verify end
//! to end that a crashing job yields a manifest failure record and a
//! non-zero exit while sibling jobs complete.

use forhdc_core::{FaultConfig, OfflineWindow, RecoveryPolicy, SeededFaults, System, SystemConfig};
use forhdc_runner::{point_seed, JobOutput, JobSpec, SimJob};
use forhdc_sim::SimDuration;
use forhdc_workload::SyntheticWorkload;

use crate::plan::{shared, NamedConfig, PlannedExperiment, SharedWorkload};
use crate::table::{f3, Table};
use crate::RunOptions;

const FILES: usize = 20_000;
const HDC: u64 = 2 * 1024 * 1024;

/// Swept per-block media bad-sector probability (also used as the
/// per-transfer bus-error probability). Row 0 is the clean baseline.
const RATES: [f64; 5] = [0.0, 1e-5, 1e-4, 1e-3, 1e-2];
const RATE_LABELS: [&str; 5] = ["0", "1e-5", "1e-4", "1e-3", "1e-2"];

/// HDC flush cadence: short enough that a power loss only loses the
/// blocks dirtied since the last tick, long enough to leave dirty
/// windows for the power-loss path to bite on.
fn with_hdc_cfg(base: SystemConfig) -> SystemConfig {
    base.with_hdc(HDC)
        .with_hdc_flush_period(SimDuration::from_millis(100))
}

const CONFIGS: [NamedConfig; 6] = [
    ("segm", SystemConfig::segm),
    ("segm_hdc", || with_hdc_cfg(SystemConfig::segm())),
    ("block", SystemConfig::block),
    ("block_hdc", || with_hdc_cfg(SystemConfig::block())),
    ("for", SystemConfig::for_),
    ("for_hdc", || with_hdc_cfg(SystemConfig::for_())),
];

/// The fault schedule for one sweep row. Faulted rows add a fixed
/// 200 ms disk-1 outage and a 500 ms controller power-loss period on
/// top of the swept media/bus rates, so every degraded-mode path
/// (retry, RA abort, offline stall, lost dirty blocks) is exercised
/// at every non-zero rate.
fn schedule(row: usize, rate: f64) -> FaultConfig {
    let mut cfg = FaultConfig::new(point_seed("fig-faults/schedule", row))
        .with_media_rates(rate, rate)
        .with_bus_rate(rate);
    if rate > 0.0 {
        cfg = cfg
            .with_offline(OfflineWindow {
                disk: 1,
                start_ns: 1_000_000_000,
                end_ns: 1_200_000_000,
            })
            .with_power_loss_period_ns(500_000_000);
    }
    cfg
}

/// Retry/backoff defaults plus a 10 s request timeout, so even a
/// pathological schedule cannot wedge a run.
fn recovery() -> RecoveryPolicy {
    RecoveryPolicy {
        request_timeout: Some(SimDuration::from_secs(10)),
        ..RecoveryPolicy::default()
    }
}

/// The degraded-mode extraction: I/O time plus the fault tallies.
fn fault_metrics(r: &forhdc_core::Report) -> JobOutput {
    JobOutput::new()
        .metric("io_ns", r.io_time.as_nanos() as f64)
        .metric("requests", r.requests as f64)
        .metric("failed_requests", r.faults.failed_requests as f64)
        .metric("timeouts", r.faults.timeouts as f64)
        .metric("retries", r.faults.retries as f64)
        .metric(
            "media_errors",
            (r.faults.media_read_errors + r.faults.media_write_errors) as f64,
        )
        .metric("bus_errors", r.faults.bus_errors as f64)
        .metric("ra_aborts", r.faults.ra_aborts as f64)
        .metric("lost_dirty", r.faults.lost_dirty_blocks as f64)
        .metric("flush_failures", r.faults.flush_failures as f64)
}

/// A job running one system under one seeded fault schedule. Media
/// faults are a pure function of the schedule seed and bus faults a
/// per-system seeded stream, so the job stays a pure function of its
/// spec and parallel runs reassemble byte-identically.
fn fault_job(
    spec: JobSpec,
    wl: &SharedWorkload,
    cfg: impl Fn() -> SystemConfig + Send + Sync + 'static,
    fault_cfg: FaultConfig,
    shards: usize,
) -> SimJob {
    let wl = wl.clone();
    SimJob::new(spec, move || {
        let sys_cfg = cfg().with_recovery(recovery());
        let faults = SeededFaults::new(fault_cfg.clone());
        // Faulted runs serialize inside the engine, but the shard
        // count still flows through so `repro --shards N` is uniform.
        fault_metrics(
            &System::new_faulted(sys_cfg, wl.get(), faults)
                .with_shards(shards)
                .run(),
        )
    })
}

/// `fig-faults`: normalized I/O time as a function of the injected
/// fault rate, write-heavy workload (30% writes, Zipf α = 0.4,
/// HDC 2 MB where enabled).
pub fn plan_faults(opts: RunOptions) -> PlannedExperiment {
    let mut jobs = Vec::new();
    for (row, &rate) in RATES.iter().enumerate() {
        let seed = point_seed("fig-faults", row);
        let wl = shared(move || {
            SyntheticWorkload::builder()
                .requests(opts.synthetic_requests)
                .files(FILES)
                .file_blocks(4)
                .streams(128)
                .write_fraction(0.3)
                .zipf_alpha(0.4)
                .seed(seed)
                .build()
        });
        let fault_cfg = schedule(row, rate);
        for (name, cfg) in CONFIGS {
            let spec = JobSpec::new(
                "fig-faults",
                jobs.len(),
                format!("rate={} {name}", RATE_LABELS[row]),
            )
            .param("requests", opts.synthetic_requests)
            .param("files", FILES)
            .param("seed", seed)
            .param("config", name)
            .param("rate", RATE_LABELS[row])
            .param("fault_seed", fault_cfg.seed)
            .param("faulted", rate > 0.0);
            jobs.push(fault_job(
                spec,
                &wl,
                cfg,
                fault_cfg.clone(),
                opts.shards.max(1),
            ));
        }
    }
    PlannedExperiment {
        id: "fig-faults",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "fig-faults",
                "Degraded-mode I/O time vs injected fault rate (each config normalized to its own fault-free run)",
                &[
                    "rate",
                    "segm",
                    "segm_hdc",
                    "block",
                    "block_hdc",
                    "for",
                    "for_hdc",
                    "failed_%",
                    "lost_dirty",
                ],
            );
            let n = CONFIGS.len();
            let base = &out[0..n];
            for (row, label) in RATE_LABELS.iter().enumerate() {
                let o = &out[row * n..(row + 1) * n];
                let mut cells = vec![label.to_string()];
                for c in 0..n {
                    cells.push(f3(o[c].get("io_ns") / base[c].get("io_ns")));
                }
                let full = &o[n - 1]; // for_hdc: the paper's full system
                cells.push(format!(
                    "{:.2}",
                    100.0 * full.get("failed_requests") / full.get("requests")
                ));
                cells.push(format!("{}", full.get("lost_dirty") as u64));
                t.push_row(cells);
            }
            t.note("faulted rows add a 200 ms disk-1 outage and a 500 ms power-loss period on top of the swept media/bus rate; failed_% and lost_dirty are for for_hdc");
            t
        }),
    }
}

/// The hidden crash-safety selftest: three trivial jobs, the middle
/// one panics deliberately. Runnable only by explicit id.
pub fn plan_selftest_panic() -> PlannedExperiment {
    let jobs = (0..3)
        .map(|i| {
            let spec = JobSpec::new("selftest-panic", i, format!("p{i}")).param("i", i);
            SimJob::new(spec, move || {
                assert!(i != 1, "selftest: job 1 panics by design");
                JobOutput::new().metric("ok", 1.0)
            })
        })
        .collect();
    PlannedExperiment {
        id: "selftest-panic",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "selftest-panic",
                "Runner crash-safety selftest (job 1 panics by design)",
                &["point", "status"],
            );
            for (i, o) in out.iter().enumerate() {
                let status = if o.try_get("ok").is_some() {
                    "ok"
                } else {
                    "failed"
                };
                t.push_row(vec![i.to_string(), status.to_string()]);
            }
            t
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_runner::Runner;

    fn quick() -> RunOptions {
        RunOptions {
            scale: 0.02,
            synthetic_requests: 600,
            ..RunOptions::default()
        }
    }

    #[test]
    fn fig_faults_row0_is_clean_and_faults_bite_at_the_top_rate() {
        // Enough requests that the accessed footprint exceeds the HDC
        // capacity; with everything pinned, HDC configs would serve
        // every access from the controller and no media fault could
        // ever fire.
        let t = plan_faults(RunOptions {
            scale: 0.02,
            synthetic_requests: 4_000,
            ..RunOptions::default()
        })
        .run_serial();
        // Row 0 is each configuration's own baseline.
        for c in 1..=CONFIGS.len() {
            assert_eq!(t.rows[0][c], "1.000", "column {c}");
        }
        let failed: Vec<f64> = t.rows.iter().map(|r| r[7].parse().unwrap()).collect();
        assert_eq!(failed[0], 0.0, "no failures without faults");
        assert!(
            failed.last().unwrap() > &0.0,
            "1% media errors must fail some requests: {failed:?}"
        );
        let lost: Vec<u64> = t.rows.iter().map(|r| r[8].parse().unwrap()).collect();
        assert_eq!(lost[0], 0, "no lost writes without faults");
        assert!(
            *lost.last().unwrap() > 0,
            "power loss must lose some dirty blocks: {lost:?}"
        );
    }

    #[test]
    fn fig_faults_parallel_matches_serial_byte_for_byte() {
        let serial = plan_faults(quick()).run_serial();
        let runner = Runner::new(4).quiet(true);
        let (parallel, stats) = plan_faults(quick()).run_with(&runner);
        assert!(stats.failures.is_empty());
        assert_eq!(serial.to_csv(), parallel.expect("table").to_csv());
    }

    #[test]
    fn selftest_panic_records_exactly_the_planted_failure() {
        let plan = plan_selftest_panic();
        let runner = Runner::new(2).quiet(true);
        let (table, stats) = plan.run_with(&runner);
        assert!(table.is_none(), "a failed experiment assembles no table");
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.failures.len(), 1);
        assert_eq!(stats.failures[0].point, 1);
        assert!(stats.failures[0].error.contains("panics by design"));
    }
}
