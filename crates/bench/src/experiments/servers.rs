//! Figure 2, Figures 7–12 and Table 2: the real-workload-clone
//! evaluation (§6.3).
//!
//! The striping and HDC sweeps are [`PlannedExperiment`]s: one job per
//! (grid point, configuration) pair sharing a single lazily generated
//! server-clone workload. Table 2 keeps one coarse job per server —
//! its best-unit argmin makes the per-unit runs data-dependent, so
//! splitting them would triple the simulation count for no latency win.

use forhdc_analytic::zipf_cumulative;
use forhdc_core::{Report, System, SystemConfig};
use forhdc_runner::{JobOutput, JobSpec, SimJob};
use forhdc_workload::{ServerKind, ServerWorkloadSpec, Workload};

use crate::plan::{shared, sim_job, PlannedExperiment, SharedWorkload};
use crate::table::{f1, f3, Table};
use crate::RunOptions;

/// The striping-unit grid of Figures 7/9/11 (KBytes).
pub const UNIT_GRID_KB: &[u32] = &[4, 16, 32, 64, 96, 128, 192, 256];

/// The HDC-size grid of Figures 8/10/12 (KBytes per disk).
pub const HDC_GRID_KB: &[u32] = &[0, 512, 1024, 1536, 2048, 2560, 3072];

const HDC: u64 = 2 * 1024 * 1024;

/// The striping unit each server's HDC sweep uses, per the paper's
/// figure captions (web 16 KB, proxy 64 KB, file 128 KB).
pub fn paper_unit_kb(kind: ServerKind) -> u32 {
    match kind {
        ServerKind::Web => 16,
        ServerKind::Proxy => 64,
        ServerKind::File => 128,
    }
}

fn spec(kind: ServerKind, opts: RunOptions) -> ServerWorkloadSpec {
    let s = match kind {
        ServerKind::Web => ServerWorkloadSpec::web(),
        ServerKind::Proxy => ServerWorkloadSpec::proxy(),
        ServerKind::File => ServerWorkloadSpec::file_server(),
    };
    s.scale(opts.scale)
}

fn workload(kind: ServerKind, opts: RunOptions) -> Workload {
    spec(kind, opts).generate().workload
}

fn shared_workload(kind: ServerKind, opts: RunOptions) -> SharedWorkload {
    shared(move || workload(kind, opts))
}

fn run_sharded(cfg: SystemConfig, wl: &Workload, shards: usize) -> Report {
    System::new(cfg, wl).with_shards(shards).run()
}

fn server_spec(
    id: &str,
    point: usize,
    label: String,
    kind: ServerKind,
    opts: RunOptions,
) -> JobSpec {
    JobSpec::new(id, point, label)
        .param("server", kind)
        .param("scale", opts.scale)
}

/// The log-spaced ranks Figure 2 samples.
const FIG2_RANKS: [usize; 13] = [
    1, 2, 5, 10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
];

/// Figure 2: access counts of the most-accessed disk blocks for the
/// three workload clones, next to the Zipf(0.43) reference the paper
/// plots. Sampled at log-spaced ranks. One job per server clone; each
/// emits its curve samples plus the curve total (the web total scales
/// the Zipf reference in the assembly).
pub fn plan_fig2(opts: RunOptions) -> PlannedExperiment {
    let jobs = [ServerKind::Web, ServerKind::Proxy, ServerKind::File]
        .into_iter()
        .enumerate()
        .map(|(point, kind)| {
            let spec = server_spec("fig2", point, format!("{kind}"), kind, opts);
            SimJob::new(spec, move || {
                let curve = workload(kind, opts).trace.popularity_curve(300_000);
                let mut o = JobOutput::new()
                    .metric("total", curve.iter().map(|&c| c as u64).sum::<u64>() as f64);
                for rank in FIG2_RANKS {
                    o = o.metric(
                        format!("r{rank}"),
                        curve.get(rank - 1).copied().unwrap_or(0) as f64,
                    );
                }
                o
            })
        })
        .collect();
    PlannedExperiment {
        id: "fig2",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "fig2",
                "Distribution of disk block accesses (top blocks, log-sampled ranks)",
                &["rank", "web", "proxy", "file", "zipf_0.43_model"],
            );
            // Zipf reference scaled to the web curve's total over
            // 300 K blocks.
            let web_total = out[0].get("total");
            let n_ref = 300_000u64;
            for rank in FIG2_RANKS {
                let sample = |o: &JobOutput| (o.get(&format!("r{rank}")) as u64).to_string();
                let z = (zipf_cumulative(rank as u64, n_ref, 0.43)
                    - zipf_cumulative(rank as u64 - 1, n_ref, 0.43))
                    * web_total;
                t.push_row(vec![
                    rank.to_string(),
                    sample(&out[0]),
                    sample(&out[1]),
                    sample(&out[2]),
                    f1(z),
                ]);
            }
            t.note("paper: hottest blocks reach ~88/78/90 accesses (web/proxy/file); the curves track a Zipf with alpha ~0.43");
            t
        }),
    }
}

/// Figure 2 on the serial path.
pub fn fig2(opts: RunOptions) -> Table {
    plan_fig2(opts).run_serial()
}

/// Figures 7 / 9 / 11: absolute I/O time versus the striping-unit
/// size, HDC caches = 2 MB where enabled.
pub fn plan_striping_sweep(
    kind: ServerKind,
    id: &'static str,
    opts: RunOptions,
) -> PlannedExperiment {
    const CONFIGS: [&str; 4] = ["segm", "segm_hdc", "for", "for_hdc"];
    let wl = shared_workload(kind, opts);
    let mut jobs = Vec::new();
    for &unit_kb in UNIT_GRID_KB {
        for name in CONFIGS {
            let cfg = move || {
                let base = match name {
                    "segm" => SystemConfig::segm(),
                    "segm_hdc" => SystemConfig::segm().with_hdc(HDC),
                    "for" => SystemConfig::for_(),
                    _ => SystemConfig::for_().with_hdc(HDC),
                };
                base.with_striping_unit(unit_kb * 1024)
            };
            let job_spec = server_spec(
                id,
                jobs.len(),
                format!("unit={unit_kb}KB {name}"),
                kind,
                opts,
            )
            .param("unit_kb", unit_kb)
            .param("config", name);
            jobs.push(sim_job(job_spec, &wl, opts.mode(), cfg));
        }
    }
    PlannedExperiment {
        id,
        jobs,
        assemble: Box::new(move |out| {
            let mut t = Table::new(
                id,
                format!("{kind} server — I/O time (s) vs striping unit (HDC 2 MB)"),
                &["unit_kb", "segm", "segm_hdc", "for", "for_hdc", "hdc_hit_%"],
            );
            for (row, &unit_kb) in UNIT_GRID_KB.iter().enumerate() {
                let o = &out[row * 4..(row + 1) * 4];
                t.push_row(vec![
                    unit_kb.to_string(),
                    f1(o[0].get("io_ns") / 1e9),
                    f1(o[1].get("io_ns") / 1e9),
                    f1(o[2].get("io_ns") / 1e9),
                    f1(o[3].get("io_ns") / 1e9),
                    f1(100.0 * o[3].get("hdc_hit_rate")),
                ]);
            }
            match kind {
                ServerKind::Web => {
                    t.note("paper: best unit 16–32 KB; FOR cuts I/O time 27–34%; FOR+HDC up to 47%")
                }
                ServerKind::Proxy => {
                    t.note("paper: best unit 32–64 KB; FOR cuts 15–17%; FOR+HDC up to 33%")
                }
                ServerKind::File => {
                    t.note("paper: best unit 128 KB; FOR cuts up to 12%; FOR+HDC up to 21%")
                }
            }
            t.note("known divergence: our clones lack the real traces' unit-scale burst concentration, so the large-unit load-imbalance penalty is weaker and the best unit lands at 128–256 KB (see EXPERIMENTS.md)");
            t
        }),
    }
}

/// Figures 8 / 10 / 12: absolute I/O time and HDC hit rate versus the
/// per-disk HDC memory, at the paper's per-server striping unit.
pub fn plan_hdc_sweep(kind: ServerKind, id: &'static str, opts: RunOptions) -> PlannedExperiment {
    let wl = shared_workload(kind, opts);
    let unit = paper_unit_kb(kind) * 1024;
    let mut jobs = Vec::new();
    for &hdc_kb in HDC_GRID_KB {
        for name in ["segm_hdc", "for_hdc"] {
            let cfg = move || {
                let base = if name == "segm_hdc" {
                    SystemConfig::segm()
                } else {
                    SystemConfig::for_()
                };
                base.with_hdc(hdc_kb as u64 * 1024).with_striping_unit(unit)
            };
            let job_spec =
                server_spec(id, jobs.len(), format!("hdc={hdc_kb}KB {name}"), kind, opts)
                    .param("unit_kb", paper_unit_kb(kind))
                    .param("hdc_kb", hdc_kb)
                    .param("config", name);
            jobs.push(sim_job(job_spec, &wl, opts.mode(), cfg));
        }
    }
    PlannedExperiment {
        id,
        jobs,
        assemble: Box::new(move |out| {
            let mut t = Table::new(
                id,
                format!(
                    "{kind} server — I/O time (s) vs HDC memory ({} KB striping unit)",
                    paper_unit_kb(kind)
                ),
                &["hdc_kb", "segm_hdc", "for_hdc", "segm_hit_%", "for_hit_%"],
            );
            for (row, &hdc_kb) in HDC_GRID_KB.iter().enumerate() {
                let o = &out[row * 2..(row + 1) * 2];
                t.push_row(vec![
                    hdc_kb.to_string(),
                    f1(o[0].get("io_ns") / 1e9),
                    f1(o[1].get("io_ns") / 1e9),
                    f1(100.0 * o[0].get("hdc_hit_rate")),
                    f1(100.0 * o[1].get("hdc_hit_rate")),
                ]);
            }
            t.note("paper shape: gains grow with HDC size to a knee (~2.5 MB), then the shrinking read-ahead cache bites; web hit rate reaches ~13% at 3 MB, file only ~4%");
            t.note("the FOR bitmap occupies ~546 KB of controller memory, so FOR+HDC cannot reach the full 3 MB grid point with an intact read-ahead cache (paper Fig. 8: the FOR+HDC curve 'does not touch the right side of the graph')");
            t
        }),
    }
}

/// Table 2: disk-throughput improvements at each server's best
/// striping unit. One coarse job per server: the best-unit argmin
/// makes the inner runs data-dependent.
pub fn plan_table2(opts: RunOptions) -> PlannedExperiment {
    const KINDS: [ServerKind; 3] = [ServerKind::Web, ServerKind::Proxy, ServerKind::File];
    let mut jobs = Vec::new();
    for kind in KINDS {
        let job_spec = server_spec(
            "table2",
            jobs.len(),
            format!("{kind} best-unit"),
            kind,
            opts,
        )
        .param("hdc", HDC)
        .param("unit_grid", format!("{UNIT_GRID_KB:?}"));
        jobs.push(SimJob::new(job_spec, move || {
            let wl = workload(kind, opts);
            // Best unit by the Segm baseline, as the paper selects it.
            let (best_unit_kb, segm) = UNIT_GRID_KB
                .iter()
                .map(|&u| {
                    (
                        u,
                        run_sharded(
                            SystemConfig::segm().with_striping_unit(u * 1024),
                            &wl,
                            opts.shards.max(1),
                        ),
                    )
                })
                .min_by_key(|(_, r)| r.io_time)
                .expect("non-empty grid");
            let unit = best_unit_kb * 1024;
            let shards = opts.shards.max(1);
            let for_ = run_sharded(SystemConfig::for_().with_striping_unit(unit), &wl, shards);
            let segm_hdc = run_sharded(
                SystemConfig::segm().with_hdc(HDC).with_striping_unit(unit),
                &wl,
                shards,
            );
            let for_hdc = run_sharded(
                SystemConfig::for_().with_hdc(HDC).with_striping_unit(unit),
                &wl,
                shards,
            );
            JobOutput::new()
                .metric("best_unit_kb", best_unit_kb as f64)
                .metric("for_improvement", for_.improvement_over(&segm))
                .metric("segm_hdc_improvement", segm_hdc.improvement_over(&segm))
                .metric("for_hdc_improvement", for_hdc.improvement_over(&segm))
        }));
    }
    PlannedExperiment {
        id: "table2",
        jobs,
        assemble: Box::new(|out| {
            let mut t = Table::new(
                "table2",
                "Disk throughput improvements at the best striping unit",
                &["server", "best_unit_kb", "for_%", "segm_hdc_%", "for_hdc_%"],
            );
            for (kind, o) in KINDS.iter().zip(out) {
                t.push_row(vec![
                    kind.to_string(),
                    (o.get("best_unit_kb") as u32).to_string(),
                    f3(100.0 * o.get("for_improvement")),
                    f3(100.0 * o.get("segm_hdc_improvement")),
                    f3(100.0 * o.get("for_hdc_improvement")),
                ]);
            }
            t.note("paper Table 2: web 34/24/47%, proxy 17/18/33%, file 12/10/21% (FOR / Segm+HDC / FOR+HDC)");
            t
        }),
    }
}

/// Figures 7 / 9 / 11 on the serial path (same jobs, same assembly).
pub fn striping_sweep(kind: ServerKind, id: &'static str, opts: RunOptions) -> Table {
    plan_striping_sweep(kind, id, opts).run_serial()
}

/// Figures 8 / 10 / 12 on the serial path.
pub fn hdc_sweep(kind: ServerKind, id: &'static str, opts: RunOptions) -> Table {
    plan_hdc_sweep(kind, id, opts).run_serial()
}

/// Table 2 on the serial path.
pub fn table2(opts: RunOptions) -> Table {
    plan_table2(opts).run_serial()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions {
            scale: 0.02,
            synthetic_requests: 500,
            ..RunOptions::default()
        }
    }

    #[test]
    fn fig2_curves_are_non_increasing() {
        let t = fig2(quick());
        for col in 1..4 {
            let vals: Vec<u64> = t.rows.iter().map(|r| r[col].parse().unwrap()).collect();
            for w in vals.windows(2) {
                assert!(w[1] <= w[0], "popularity curve must be sorted: {vals:?}");
            }
        }
    }

    #[test]
    fn fig2_parallel_matches_serial_byte_for_byte() {
        let serial = plan_fig2(quick()).run_serial();
        let runner = forhdc_runner::Runner::new(3).quiet(true);
        let (parallel, stats) = plan_fig2(quick()).run_with(&runner);
        assert!(stats.failures.is_empty());
        assert_eq!(serial.to_csv(), parallel.expect("table").to_csv());
    }

    #[test]
    fn striping_sweep_for_wins_everywhere() {
        let t = striping_sweep(ServerKind::Web, "fig7", quick());
        for row in &t.rows {
            let segm: f64 = row[1].parse().unwrap();
            let for_: f64 = row[3].parse().unwrap();
            assert!(
                for_ <= segm * 1.02,
                "FOR {for_} vs Segm {segm} at {}",
                row[0]
            );
        }
    }

    #[test]
    fn table2_reports_positive_combined_gains() {
        let t = table2(quick());
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let combined: f64 = row[4].parse().unwrap();
            assert!(combined > 0.0, "{} FOR+HDC {combined}%", row[0]);
        }
    }

    #[test]
    fn hdc_sweep_has_full_grid() {
        let t = hdc_sweep(ServerKind::File, "fig12", quick());
        assert_eq!(t.rows.len(), HDC_GRID_KB.len());
        // Hit rate grows with HDC memory.
        let hits: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(hits.last().unwrap() >= hits.first().unwrap());
    }
}
