//! Aligned-text and CSV rendering of experiment results.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A rectangular result table (one per figure/table of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment identifier, e.g. `fig3`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape expectations, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Serializes as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        f.write_all(self.to_csv().as_bytes())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimals (the tables' default precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_display_roundtrip() {
        let mut t = Table::new("figX", "demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.note("shape holds");
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
        let s = t.to_string();
        assert!(s.contains("figX"));
        assert!(s.contains("note: shape holds"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", "y", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("forhdc_table_test");
        let mut t = Table::new("unit", "t", &["h"]);
        t.push_row(vec!["v".into()]);
        t.write_csv(&dir).unwrap();
        let got = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(got, "h\nv\n");
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
