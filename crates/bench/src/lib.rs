//! # forhdc-bench
//!
//! The reproduction harness: one runner per table and figure of the
//! paper's evaluation (§6), shared between the `repro` binary and the
//! Criterion benchmarks.
//!
//! Every experiment returns a [`Table`] whose rows mirror the series
//! the paper plots; the binary prints it and writes a CSV next to it.
//!
//! | Experiment | Paper artifact |
//! |---|---|
//! | [`experiments::micro::table1`] | Table 1 (simulation parameters) |
//! | [`experiments::micro::fig1`] | Fig. 1 (sequential read vs fragmentation) |
//! | [`experiments::servers::fig2`] | Fig. 2 (block access distribution) |
//! | [`experiments::synthetic::fig3`] | Fig. 3 (I/O time vs file size) |
//! | [`experiments::synthetic::fig4`] | Fig. 4 (I/O time vs streams) |
//! | [`experiments::synthetic::fig5`] | Fig. 5 (I/O time vs Zipf α) |
//! | [`experiments::synthetic::fig6`] | Fig. 6 (I/O time vs write %) |
//! | [`experiments::servers::striping_sweep`] | Figs. 7 / 9 / 11 |
//! | [`experiments::servers::hdc_sweep`] | Figs. 8 / 10 / 12 |
//! | [`experiments::servers::table2`] | Table 2 (best-unit improvements) |
//! | [`experiments::micro::model_check`] | analytic-vs-simulated cross-check |
//! | [`experiments::ablations`] | ten design-choice ablations (DESIGN.md §8) |

pub mod experiments;
pub mod fuzz;
pub mod plan;
pub mod table;

pub mod tracefs;

pub use plan::PlannedExperiment;
pub use table::Table;

/// Where and how a traced run writes its request-lifecycle events.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpec {
    /// Root output directory; each job writes
    /// `<dir>/<experiment>/p<point:04>.jsonl`.
    pub dir: &'static str,
    /// Sampler cadence in simulated time.
    pub sample: forhdc_sim::SimDuration,
}

/// How a sweep job wraps its simulation: optional tracing, optional
/// checked mode (`repro --check` runs every point under
/// [`forhdc_core::FullAudit`]; reports stay byte-identical).
#[derive(Debug, Clone, Copy, Default)]
pub struct JobMode {
    /// Request-lifecycle tracing destination, when on.
    pub trace: Option<TraceSpec>,
    /// Run under the invariant auditor (panics on violation).
    pub check: bool,
    /// Engine shard count (`repro --shards N`); output is
    /// byte-identical for every value.
    pub shards: usize,
}

/// Global run options shared by the experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Request-count scale for the server workload clones (1.0 = the
    /// calibrated default; smaller = faster, coarser).
    pub scale: f64,
    /// Request count for the synthetic workloads (paper: 10 000).
    pub synthetic_requests: usize,
    /// Trace output root (`repro --trace DIR`). `'static` so
    /// [`RunOptions`] stays `Copy`; the binary leaks its one CLI
    /// argument.
    pub trace_dir: Option<&'static str>,
    /// Sampler cadence in simulated milliseconds (default 100).
    pub trace_sample_ms: u64,
    /// Run every simulation point under [`forhdc_core::FullAudit`]
    /// (`repro --check`). Invariant violations panic the job; the
    /// crash-safe runner records them in the manifest.
    pub check: bool,
    /// Engine shards per simulation (`repro --shards N`, default 1).
    /// Deterministic: every shard count produces identical bytes.
    pub shards: usize,
}

impl RunOptions {
    /// The trace destination and cadence, when tracing is on.
    pub fn trace(&self) -> Option<TraceSpec> {
        self.trace_dir.map(|dir| TraceSpec {
            dir,
            sample: forhdc_sim::SimDuration::from_millis(self.trace_sample_ms),
        })
    }

    /// The per-job simulation mode (tracing + checking) for
    /// [`plan::sim_job`].
    pub fn mode(&self) -> JobMode {
        JobMode {
            trace: self.trace(),
            check: self.check,
            shards: self.shards,
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: 1.0,
            synthetic_requests: 10_000,
            trace_dir: None,
            trace_sample_ms: 100,
            check: false,
            shards: 1,
        }
    }
}
