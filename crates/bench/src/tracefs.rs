//! Trace files on disk: layout, writing, and summarization.
//!
//! A traced run (`repro --trace DIR`) writes one JSONL file per curve
//! point, `DIR/<experiment>/p<point:04>.jsonl`. Per-point files make
//! parallel traced runs byte-identical to serial ones by construction
//! — no interleaving is possible — and keep each file independently
//! parseable.

use std::path::{Path, PathBuf};

use forhdc_runner::{TracePhase, TraceSummary as ManifestTrace};
use forhdc_trace::{parse_jsonl, TraceSummary};

/// The trace file for one experiment point.
pub fn point_path(dir: &str, experiment: &str, point: usize) -> PathBuf {
    Path::new(dir)
        .join(experiment)
        .join(format!("p{point:04}.jsonl"))
}

/// Writes one point's JSONL document, creating parent directories.
///
/// # Errors
///
/// Returns a description of the failed operation. A traced run that
/// silently dropped its trace would defeat the point of tracing, so
/// callers must surface the error — the job layer turns it into a
/// recorded job failure rather than an aborted process.
pub fn write_point(path: &Path, jsonl: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating trace dir {}: {e}", parent.display()))?;
    }
    std::fs::write(path, jsonl).map_err(|e| format!("writing trace file {}: {e}", path.display()))
}

/// Verifies that `dir` exists (creating it as needed) and is
/// writable, by round-tripping a probe file. Lets the CLI fail fast
/// with one clean diagnostic instead of one failed job per point.
///
/// # Errors
///
/// Returns a description of the failed operation.
pub fn ensure_writable_dir(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let probe = dir.join(".forhdc-write-probe");
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("{} is not writable: {e}", dir.display()))?;
    std::fs::remove_file(&probe).map_err(|e| format!("removing {}: {e}", probe.display()))
}

/// The `.jsonl` files directly inside `dir`, sorted by name (point
/// order, since the names are zero-padded).
///
/// # Errors
///
/// Returns a description of any directory-reading failure.
pub fn point_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading trace dir {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    Ok(files)
}

/// Parses and merges every point file of one experiment directory into
/// a single summary (exercising histogram mergeability), returning the
/// manifest-ready digest.
///
/// # Errors
///
/// Returns the offending file and cause on any read or parse failure.
pub fn summarize_dir(dir: &Path) -> Result<ManifestTrace, String> {
    let files = point_files(dir)?;
    let mut merged = TraceSummary::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let events = parse_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        merged.merge(&TraceSummary::from_events(&events));
    }
    Ok(to_manifest(files.len(), &merged))
}

/// Converts a trace-crate summary into the runner's manifest digest.
pub fn to_manifest(files: usize, summary: &TraceSummary) -> ManifestTrace {
    ManifestTrace {
        files,
        events: summary.events,
        requests: summary.requests,
        phases: summary
            .phase_percentiles()
            .into_iter()
            .map(|p| TracePhase {
                name: p.phase.to_string(),
                count: p.count,
                p50_ns: p.p50_ns,
                p95_ns: p.p95_ns,
                p99_ns: p.p99_ns,
                max_ns: p.max_ns,
            })
            .collect(),
    }
}
