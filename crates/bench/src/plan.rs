//! Job-graph planning: sweep experiments decomposed into independent
//! [`SimJob`]s plus a pure assembly step (DESIGN.md §6).
//!
//! The serial path ([`PlannedExperiment::run_serial`]) executes the
//! **same** job closures in point order and feeds the same assembly as
//! the parallel path ([`PlannedExperiment::run_with`]), so parallel
//! output is byte-identical to serial output by construction — there is
//! no second implementation to keep in sync.
//!
//! Jobs emit raw simulator quantities (nanoseconds, rates, counts) as
//! flat `f64` metrics; all formatting and normalization happens in the
//! assembly. Because `SimDuration::as_secs_f64` is literally
//! `as_nanos() as f64 / 1e9`, assembling from an `io_ns` metric
//! reproduces the legacy per-`Report` arithmetic bit for bit.

use std::sync::Arc;

use forhdc_core::{FullAudit, NoFaults, Report, System, SystemConfig};
use forhdc_runner::{ExperimentStats, JobOutput, JobSpec, Lazy, Runner, SimJob};
use forhdc_workload::Workload;

use crate::Table;

/// A workload built at most once and shared by the jobs that need it.
/// If every consumer hits the result cache it is never generated.
pub type SharedWorkload = Arc<Lazy<Workload>>;

/// Wraps a workload builder for sharing between jobs.
pub fn shared(build: impl FnOnce() -> Workload + Send + 'static) -> SharedWorkload {
    Arc::new(Lazy::new(build))
}

/// Pure assembly step: job outputs (in point order) → final table.
pub type AssembleFn = Box<dyn Fn(&[JobOutput]) -> Table + Send + Sync>;

/// A named system configuration in a sweep's series list.
pub type NamedConfig = (&'static str, fn() -> SystemConfig);

/// An experiment decomposed into independent jobs plus the assembly
/// that turns their outputs (in point order) into the final table.
pub struct PlannedExperiment {
    /// Experiment id (also the table id).
    pub id: &'static str,
    /// Independent simulation jobs, in deterministic point order.
    pub jobs: Vec<SimJob>,
    /// Pure assembly: outputs (aligned with `jobs`) → table.
    pub assemble: AssembleFn,
}

impl PlannedExperiment {
    /// Executes the jobs in order on the calling thread and assembles.
    pub fn run_serial(&self) -> Table {
        let outputs: Vec<JobOutput> = self.jobs.iter().map(|j| (j.run)()).collect();
        (self.assemble)(&outputs)
    }

    /// Executes the jobs on `runner` (parallel and/or cached) and
    /// assembles. The table is identical to [`Self::run_serial`]'s.
    ///
    /// When any job failed (panicked past its retry budget), there is
    /// nothing sound to assemble — a partial table would be silently
    /// wrong — so the table is `None` and the failure records are in
    /// the stats.
    pub fn run_with(&self, runner: &Runner) -> (Option<Table>, ExperimentStats) {
        let run = runner.execute(self.id, &self.jobs);
        let table = run
            .stats
            .failures
            .is_empty()
            .then(|| (self.assemble)(&run.outputs));
        (table, run.stats)
    }
}

impl std::fmt::Debug for PlannedExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedExperiment")
            .field("id", &self.id)
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

/// The standard extraction from a [`Report`] into flat job metrics.
///
/// Counts and durations are exact in `f64` at simulation scale
/// (all values ≪ 2^53), so the cache round-trips them bit-exactly.
pub fn report_metrics(r: &Report) -> JobOutput {
    JobOutput::new()
        .metric("io_ns", r.io_time.as_nanos() as f64)
        .metric("hdc_hit_rate", r.hdc_hit_rate())
        .metric("cache_hit_rate", r.cache.extent_hit_rate())
        .metric("mean_response_ns", r.mean_response.as_nanos() as f64)
        .metric("media_ops", r.disk.media_ops as f64)
        .metric("ra_blocks", r.disk.read_ahead_blocks as f64)
        .metric("hdc_flushed", r.hdc.flushed as f64)
}

/// A job that runs one `System` over a shared workload and extracts
/// the standard metrics. Covers nearly every sweep point; experiments
/// with bespoke outputs build their own [`SimJob`] directly.
///
/// With `mode.trace` set, the run carries a [`forhdc_trace::MemTracer`]
/// and writes its events to `<dir>/<experiment>/p<point:04>.jsonl`
/// before returning the same metrics. Each point owns its own file, so
/// parallel traced runs are byte-identical to serial ones by
/// construction.
///
/// With `mode.check` set, the run carries a [`FullAudit`] auditor that
/// panics on any invariant violation; the report (and hence the
/// metrics) is byte-identical to the unchecked run.
pub fn sim_job(
    spec: JobSpec,
    wl: &SharedWorkload,
    mode: crate::JobMode,
    cfg: impl Fn() -> SystemConfig + Send + Sync + 'static,
) -> SimJob {
    let wl = wl.clone();
    let check = mode.check;
    let shards = mode.shards.max(1);
    match mode.trace {
        None => SimJob::new(spec, move || {
            let report = if check {
                System::new_checked(cfg(), wl.get())
                    .with_shards(shards)
                    .run()
            } else {
                System::new(cfg(), wl.get()).with_shards(shards).run()
            };
            report_metrics(&report)
        }),
        Some(t) => {
            let path = crate::tracefs::point_path(t.dir, &spec.experiment, spec.point);
            SimJob::new(spec, move || {
                let sys_cfg = cfg().with_trace_sampling(t.sample);
                let (report, tracer) = if check {
                    System::new_traced_faulted_audited(
                        sys_cfg,
                        wl.get(),
                        forhdc_trace::MemTracer::new(),
                        NoFaults,
                        FullAudit::new(),
                    )
                    .with_shards(shards)
                    .run_traced()
                } else {
                    System::new_traced(sys_cfg, wl.get(), forhdc_trace::MemTracer::new())
                        .with_shards(shards)
                        .run_traced()
                };
                // A panic here is caught by the runner and recorded as
                // a job failure; the process and its siblings carry on.
                if let Err(e) = crate::tracefs::write_point(&path, &tracer.to_jsonl()) {
                    panic!("{e}");
                }
                report_metrics(&report)
            })
        }
    }
}
