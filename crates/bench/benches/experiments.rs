//! End-to-end Criterion benchmarks: tiny-scale versions of the paper's
//! experiments, to track the harness's own performance over time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use forhdc_bench::{experiments, RunOptions};

fn tiny() -> RunOptions {
    RunOptions {
        scale: 0.01,
        synthetic_requests: 300,
        ..RunOptions::default()
    }
}

fn bench_micro_experiments(c: &mut Criterion) {
    c.bench_function("experiment/fig1", |b| {
        b.iter(|| black_box(experiments::run("fig1", tiny()).rows.len()))
    });
    c.bench_function("experiment/table1", |b| {
        b.iter(|| black_box(experiments::run("table1", tiny()).rows.len()))
    });
}

fn bench_synthetic_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_synth");
    g.sample_size(10);
    g.bench_function("fig4_tiny", |b| {
        b.iter(|| black_box(experiments::run("fig4", tiny()).rows.len()))
    });
    g.finish();
}

fn bench_server_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_server");
    g.sample_size(10);
    g.bench_function("table2_tiny", |b| {
        b.iter(|| black_box(experiments::run("table2", tiny()).rows.len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_micro_experiments,
    bench_synthetic_experiment,
    bench_server_experiment
);
criterion_main!(benches);
