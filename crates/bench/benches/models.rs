//! Criterion benchmarks of the workload/layout models: Zipf sampling,
//! layout allocation, FOR bitmap construction and queries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use forhdc_analytic::zipf_cumulative;
use forhdc_layout::{build_disk_bitmaps, LayoutBuilder};
use forhdc_sim::{PhysBlock, StripingMap};
use forhdc_workload::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_zipf(c: &mut Criterion) {
    let z = ZipfSampler::new(70_000, 0.43);
    c.bench_function("zipf/sample_70k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
    c.bench_function("zipf/cumulative_closed_form", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = (h + 37) % 10_000;
            black_box(zipf_cumulative(h, 10_000, 0.43))
        })
    });
}

fn bench_layout(c: &mut Criterion) {
    c.bench_function("layout/build_10k_files_frag5", |b| {
        let sizes = vec![6u32; 10_000];
        b.iter(|| {
            black_box(
                LayoutBuilder::new()
                    .fragmentation(0.05)
                    .seed(3)
                    .build(&sizes)
                    .total_blocks(),
            )
        })
    });
}

fn bench_bitmap(c: &mut Criterion) {
    let map = LayoutBuilder::new()
        .fragmentation(0.05)
        .seed(3)
        .build(&vec![6u32; 10_000]);
    let striping = StripingMap::new(8, 32);
    c.bench_function("bitmap/build_8_disks", |b| {
        b.iter(|| black_box(build_disk_bitmaps(&map, &striping, 20_000).len()))
    });
    let bitmaps = build_disk_bitmaps(&map, &striping, 20_000);
    c.bench_function("bitmap/run_ahead", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 101;
            black_box(bitmaps[0].run_ahead(PhysBlock::new(i % 7_000), 32))
        })
    });
}

criterion_group!(benches, bench_zipf, bench_layout, bench_bitmap);
criterion_main!(benches);
