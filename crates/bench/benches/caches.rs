//! Criterion benchmarks of the controller-cache organizations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use forhdc_cache::{
    BlockCache, BlockReplacement, ControllerCache, HdcRegion, SegmentCache, SegmentReplacement,
};
use forhdc_sim::PhysBlock;

fn bench_block_cache(c: &mut Criterion) {
    for policy in [BlockReplacement::Mru, BlockReplacement::Lru] {
        c.bench_function(&format!("block_cache/{policy:?}_insert_touch"), |b| {
            b.iter(|| {
                let mut cache = BlockCache::new(1024, policy);
                for i in 0..2_000u64 {
                    cache.insert_run(PhysBlock::new(i * 8 % 16_384), 8, 4);
                    cache.touch(PhysBlock::new(i * 8 % 16_384));
                }
                black_box(cache.resident_blocks())
            })
        });
    }
}

fn bench_segment_cache(c: &mut Criterion) {
    c.bench_function("segment_cache/lru_insert_touch", |b| {
        b.iter(|| {
            let mut cache = SegmentCache::new(27, 32, SegmentReplacement::Lru);
            for i in 0..2_000u64 {
                cache.insert_run(PhysBlock::new(i * 32 % 65_536), 32, 4);
                cache.touch(PhysBlock::new(i * 32 % 65_536));
            }
            black_box(cache.resident_blocks())
        })
    });
    c.bench_function("segment_cache/lookup_extent", |b| {
        let mut cache = SegmentCache::new(27, 32, SegmentReplacement::Lru);
        for i in 0..27u64 {
            cache.insert_run(PhysBlock::new(i * 32), 32, 32);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 13;
            black_box(cache.lookup_extent(PhysBlock::new(i * 4 % 1_000), 4))
        })
    });
}

fn bench_hdc(c: &mut Criterion) {
    c.bench_function("hdc/read_mixed", |b| {
        let mut hdc = HdcRegion::new(512);
        for i in 0..512u64 {
            hdc.pin(PhysBlock::new(i * 2)).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(hdc.read(PhysBlock::new(i % 1_024)))
        })
    });
    c.bench_function("hdc/pin_flush_cycle", |b| {
        b.iter(|| {
            let mut hdc = HdcRegion::new(256);
            for i in 0..256u64 {
                hdc.pin(PhysBlock::new(i)).unwrap();
                hdc.write(PhysBlock::new(i));
            }
            black_box(hdc.flush().len())
        })
    });
}

criterion_group!(benches, bench_block_cache, bench_segment_cache, bench_hdc);
criterion_main!(benches);
