//! Criterion benchmarks of the simulator substrate: mechanics,
//! scheduling, striping, event queue, and a full small system run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use forhdc_core::{System, SystemConfig};
use forhdc_sim::sched::{make_scheduler, QueuedOp};
use forhdc_sim::{
    DiskConfig, DiskMechanics, EventQueue, PhysBlock, ReadWrite, SchedulerKind, SimTime,
    StripingMap,
};
use forhdc_workload::SyntheticWorkload;

fn bench_mechanics(c: &mut Criterion) {
    let cfg = DiskConfig::default();
    c.bench_function("mechanics/service_4blk", |b| {
        let mut mech = DiskMechanics::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 6364136223846793005).wrapping_add(1);
            let block = PhysBlock::new(i % 4_000_000);
            let t = mech.service(
                ReadWrite::Read,
                block,
                4,
                SimTime::from_nanos(i % 1_000_000),
            );
            black_box(t.total())
        })
    });
    c.bench_function("mechanics/seek_model", |b| {
        let seek = cfg.seek;
        let mut n = 0u32;
        b.iter(|| {
            n = (n + 97) % 10_000;
            black_box(seek.seek_ms(n))
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    for kind in [
        SchedulerKind::Look,
        SchedulerKind::Fcfs,
        SchedulerKind::Sstf,
    ] {
        c.bench_function(&format!("scheduler/{kind:?}_push_pop_64"), |b| {
            b.iter(|| {
                let mut s = make_scheduler(kind);
                for i in 0..64u64 {
                    s.push(QueuedOp {
                        token: i,
                        start: PhysBlock::new(i * 997 % 100_000),
                        nblocks: 4,
                        requested: 4,
                        kind: ReadWrite::Read,
                        cylinder: (i * 997 % 10_000) as u32,
                        queued_at: SimTime::ZERO,
                        attempt: 0,
                    });
                }
                let mut head = 5_000;
                while let Some(op) = s.pop_next(head) {
                    head = op.cylinder;
                }
                black_box(head)
            })
        });
    }
}

fn bench_striping(c: &mut Criterion) {
    let map = StripingMap::new(8, 32);
    c.bench_function("striping/split_64blk", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 12_345;
            black_box(map.split(forhdc_sim::LogicalBlock::new(i % 1_000_000), 64))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine/queue_1k_events", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_nanos(i * 7919 % 1_000_000 + 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some(f) = q.pop() {
                acc = acc.wrapping_add(f.event);
            }
            black_box(acc)
        })
    });
}

fn bench_full_system(c: &mut Criterion) {
    let wl = SyntheticWorkload::builder()
        .requests(500)
        .files(5_000)
        .file_blocks(4)
        .streams(64)
        .seed(7)
        .build();
    c.bench_function("system/run_500_requests_segm", |b| {
        b.iter(|| black_box(System::new(SystemConfig::segm(), &wl).run().io_time))
    });
    c.bench_function("system/run_500_requests_for", |b| {
        b.iter(|| black_box(System::new(SystemConfig::for_(), &wl).run().io_time))
    });
}

criterion_group!(
    benches,
    bench_mechanics,
    bench_scheduler,
    bench_striping,
    bench_event_queue,
    bench_full_system
);
criterion_main!(benches);
