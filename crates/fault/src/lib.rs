//! # forhdc-fault
//!
//! Deterministic, seeded fault schedules for the simulated disk array.
//!
//! The simulator is generic over a [`FaultModel`], mirroring the
//! tracer facade: the default [`NoFaults`] answers `enabled() ==
//! false` as a compile-time constant, so every fault probe in the hot
//! path monomorphizes away and an unfaulted run is byte-identical to
//! one built before this crate existed (test-enforced, like
//! traced==untraced).
//!
//! [`SeededFaults`] implements four fault kinds:
//!
//! - **Media errors** — persistent per-block bad sectors. Whether a
//!   block is bad is a pure function of `(seed, disk, block, r/w)`
//!   via a splitmix64-style finalizer, so the answer does not depend
//!   on visit order: the same schedule yields the same fault sequence
//!   no matter how the runner parallelizes points.
//! - **Bus errors** — transient per-transfer faults drawn from a
//!   seeded RNG stream; a retry of the same transfer rolls again.
//! - **Offline windows** — per-disk intervals of simulated time in
//!   which the disk accepts no media operations; queued work resumes
//!   when the window closes.
//! - **Power loss** — periodic controller power-loss events that
//!   discard volatile cache contents; dirty HDC blocks that were not
//!   yet flushed become *lost writes*.
//!
//! The engine only *decides* faults; the recovery policy (retries,
//! backoff, timeouts, degraded read-ahead) lives in `forhdc-core`,
//! which also tallies the outcome into a [`FaultStats`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A closed-open interval of simulated time during which one disk is
/// offline (accepts no new media operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineWindow {
    /// Physical disk id.
    pub disk: u16,
    /// Window start, in simulated nanoseconds (inclusive).
    pub start_ns: u64,
    /// Window end, in simulated nanoseconds (exclusive).
    pub end_ns: u64,
}

/// The full description of a seeded fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Root seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Probability that any given block is a persistent read-bad
    /// sector.
    pub read_error_rate: f64,
    /// Probability that any given block is a persistent write-bad
    /// sector.
    pub write_error_rate: f64,
    /// Probability that one bus transfer fails transiently.
    pub bus_error_rate: f64,
    /// Scheduled whole-disk offline windows.
    pub offline: Vec<OfflineWindow>,
    /// Controller power-loss period in simulated nanoseconds; `None`
    /// disables power-loss events.
    pub power_loss_period_ns: Option<u64>,
}

impl FaultConfig {
    /// A schedule with every fault disabled, rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            bus_error_rate: 0.0,
            offline: Vec::new(),
            power_loss_period_ns: None,
        }
    }

    /// Sets the persistent media bad-sector probabilities.
    pub fn with_media_rates(mut self, read: f64, write: f64) -> Self {
        self.read_error_rate = read;
        self.write_error_rate = write;
        self
    }

    /// Sets the transient bus-error probability.
    pub fn with_bus_rate(mut self, rate: f64) -> Self {
        self.bus_error_rate = rate;
        self
    }

    /// Adds a whole-disk offline window.
    pub fn with_offline(mut self, window: OfflineWindow) -> Self {
        self.offline.push(window);
        self
    }

    /// Enables periodic controller power loss every `period_ns`.
    pub fn with_power_loss_period_ns(mut self, period_ns: u64) -> Self {
        self.power_loss_period_ns = Some(period_ns);
        self
    }
}

/// The fault-decision interface the simulator is generic over.
///
/// Every method has a "nothing happens" default so [`NoFaults`] is an
/// empty impl; `enabled()` gates every call site, letting the default
/// monomorphize to straight-line fault-free code.
pub trait FaultModel {
    /// Whether this model can ever inject a fault. Call sites guard on
    /// this so the `NoFaults` instantiation compiles the fault paths
    /// out entirely.
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    /// Whether `block` on `disk` is a persistent bad sector for the
    /// given direction. Must be a pure function of its arguments (and
    /// the seed) — order-independence is what keeps parallel runs
    /// deterministic.
    #[inline(always)]
    fn media_error(&self, _disk: u16, _block: u64, _write: bool) -> bool {
        false
    }

    /// Rolls one transient bus-transfer fault. Stateful: consecutive
    /// calls advance a seeded stream, so a retry rolls fresh.
    #[inline(always)]
    fn bus_error(&mut self) -> bool {
        false
    }

    /// If `disk` is offline at `now_ns`, the simulated time at which
    /// it comes back online.
    #[inline(always)]
    fn offline_until(&self, _disk: u16, _now_ns: u64) -> Option<u64> {
        None
    }

    /// Controller power-loss period, if the schedule has one.
    #[inline(always)]
    fn power_loss_period_ns(&self) -> Option<u64> {
        None
    }
}

/// The zero-overhead default: no faults, ever.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultModel for NoFaults {}

/// A deterministic fault engine driven by a [`FaultConfig`].
#[derive(Debug, Clone)]
pub struct SeededFaults {
    cfg: FaultConfig,
    bus: StdRng,
}

impl SeededFaults {
    /// Builds the engine; the bus stream is derived from the config
    /// seed.
    pub fn new(cfg: FaultConfig) -> Self {
        let bus = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xB5);
        SeededFaults { cfg, bus }
    }

    /// The schedule this engine runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }
}

/// Splitmix64-style finalizer: maps `(seed, disk, block, salt)` to a
/// uniform f64 in `[0, 1)` using the same 53-bit mantissa mapping as
/// the workspace RNG. Stateless, so bad sectors are a property of the
/// schedule, not of the visit order.
fn hash_u01(seed: u64, disk: u16, block: u64, salt: u64) -> f64 {
    let mut x = seed
        ^ (disk as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)
        ^ block.wrapping_mul(0xD1B54A32D192ED03)
        ^ salt;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const READ_SALT: u64 = 0x52;
const WRITE_SALT: u64 = 0x57;

impl FaultModel for SeededFaults {
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }

    fn media_error(&self, disk: u16, block: u64, write: bool) -> bool {
        let (rate, salt) = if write {
            (self.cfg.write_error_rate, WRITE_SALT)
        } else {
            (self.cfg.read_error_rate, READ_SALT)
        };
        // `x < 0.0` is false for every x in [0, 1), so a zero rate
        // never faults without a special case.
        hash_u01(self.cfg.seed, disk, block, salt) < rate
    }

    fn bus_error(&mut self) -> bool {
        // Skip the draw entirely at rate zero so a zero-rate schedule
        // is behaviorally indistinguishable from `NoFaults`.
        self.cfg.bus_error_rate > 0.0 && self.bus.gen_bool(self.cfg.bus_error_rate)
    }

    fn offline_until(&self, disk: u16, now_ns: u64) -> Option<u64> {
        self.cfg
            .offline
            .iter()
            .filter(|w| w.disk == disk && w.start_ns <= now_ns && now_ns < w.end_ns)
            .map(|w| w.end_ns)
            .max()
    }

    fn power_loss_period_ns(&self) -> Option<u64> {
        self.cfg.power_loss_period_ns
    }
}

/// Degraded-mode tallies: what the recovery policy observed and did.
/// Merged across disks/points like the cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Media read operations that hit a bad sector.
    pub media_read_errors: u64,
    /// Media write operations that hit a bad sector.
    pub media_write_errors: u64,
    /// Transient bus-transfer faults observed.
    pub bus_errors: u64,
    /// Retries issued (media + bus).
    pub retries: u64,
    /// Read-ahead extensions aborted because the speculative suffix
    /// crossed a bad sector (the demand prefix still completed).
    pub ra_aborts: u64,
    /// Host requests completed with an error after retry exhaustion
    /// or timeout.
    pub failed_requests: u64,
    /// Requests that exceeded the configured per-request timeout.
    pub timeouts: u64,
    /// Controller power-loss events delivered.
    pub power_losses: u64,
    /// Dirty HDC blocks lost to power loss or failed flushes — writes
    /// the host believed durable-in-controller that never reached the
    /// media.
    pub lost_dirty_blocks: u64,
    /// HDC flush write-backs that failed on the media (blocks were
    /// re-marked dirty for a later flush where possible).
    pub flush_failures: u64,
    /// Media operations delayed because the target disk was offline.
    pub offline_stalls: u64,
}

impl FaultStats {
    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.media_read_errors += other.media_read_errors;
        self.media_write_errors += other.media_write_errors;
        self.bus_errors += other.bus_errors;
        self.retries += other.retries;
        self.ra_aborts += other.ra_aborts;
        self.failed_requests += other.failed_requests;
        self.timeouts += other.timeouts;
        self.power_losses += other.power_losses;
        self.lost_dirty_blocks += other.lost_dirty_blocks;
        self.flush_failures += other.flush_failures;
        self.offline_stalls += other.offline_stalls;
    }

    /// Whether every counter is zero (the report omits the degraded
    /// section for a clean run).
    pub fn is_trivial(&self) -> bool {
        *self == FaultStats::default()
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "media errors {}r/{}w, bus errors {}, retries {}, ra aborts {}, \
             failed requests {}, timeouts {}, power losses {}, lost dirty {}, \
             flush failures {}, offline stalls {}",
            self.media_read_errors,
            self.media_write_errors,
            self.bus_errors,
            self.retries,
            self.ra_aborts,
            self.failed_requests,
            self.timeouts,
            self.power_losses,
            self.lost_dirty_blocks,
            self.flush_failures,
            self.offline_stalls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inert() {
        let mut f = NoFaults;
        assert!(!f.enabled());
        assert!(!f.media_error(0, 0, false));
        assert!(!f.bus_error());
        assert_eq!(f.offline_until(0, 0), None);
        assert_eq!(f.power_loss_period_ns(), None);
    }

    #[test]
    fn media_errors_are_pure_and_order_independent() {
        let f = SeededFaults::new(FaultConfig::new(42).with_media_rates(0.01, 0.01));
        let forward: Vec<bool> = (0..10_000).map(|b| f.media_error(3, b, false)).collect();
        let backward: Vec<bool> = (0..10_000)
            .rev()
            .map(|b| f.media_error(3, b, false))
            .collect();
        let backward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        // Another engine with the same seed agrees block for block.
        let g = SeededFaults::new(FaultConfig::new(42).with_media_rates(0.01, 0.01));
        assert!((0..10_000).all(|b| f.media_error(3, b, false) == g.media_error(3, b, false)));
    }

    #[test]
    fn media_rate_extremes() {
        let zero = SeededFaults::new(FaultConfig::new(7));
        assert!((0..5_000).all(|b| !zero.media_error(0, b, false)));
        assert!((0..5_000).all(|b| !zero.media_error(0, b, true)));
        let one = SeededFaults::new(FaultConfig::new(7).with_media_rates(1.0, 1.0));
        assert!((0..5_000).all(|b| one.media_error(0, b, false)));
    }

    #[test]
    fn media_rate_hits_roughly_the_target() {
        let f = SeededFaults::new(FaultConfig::new(9).with_media_rates(0.01, 0.0));
        let hits = (0..100_000).filter(|&b| f.media_error(0, b, false)).count();
        assert!((500..2_000).contains(&hits), "hits = {hits}");
        // Write direction uses an independent stream; rate 0 ⇒ none.
        assert!((0..100_000).all(|b| !f.media_error(0, b, true)));
    }

    #[test]
    fn read_and_write_bad_sectors_are_independent() {
        let f = SeededFaults::new(FaultConfig::new(11).with_media_rates(0.05, 0.05));
        let both = (0..50_000)
            .filter(|&b| f.media_error(0, b, false) && f.media_error(0, b, true))
            .count();
        let reads = (0..50_000).filter(|&b| f.media_error(0, b, false)).count();
        // If the streams were identical, both == reads.
        assert!(both < reads / 2, "both = {both}, reads = {reads}");
    }

    #[test]
    fn bus_stream_is_seed_deterministic() {
        let cfg = FaultConfig::new(5).with_bus_rate(0.3);
        let mut a = SeededFaults::new(cfg.clone());
        let mut b = SeededFaults::new(cfg);
        let sa: Vec<bool> = (0..1000).map(|_| a.bus_error()).collect();
        let sb: Vec<bool> = (0..1000).map(|_| b.bus_error()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x));
        assert!(sa.iter().any(|&x| !x));
    }

    #[test]
    fn zero_bus_rate_never_draws() {
        let mut f = SeededFaults::new(FaultConfig::new(5));
        assert!((0..100).all(|_| !f.bus_error()));
    }

    #[test]
    fn offline_windows_gate_by_disk_and_time() {
        let f = SeededFaults::new(FaultConfig::new(1).with_offline(OfflineWindow {
            disk: 2,
            start_ns: 100,
            end_ns: 200,
        }));
        assert_eq!(f.offline_until(2, 99), None);
        assert_eq!(f.offline_until(2, 100), Some(200));
        assert_eq!(f.offline_until(2, 199), Some(200));
        assert_eq!(f.offline_until(2, 200), None);
        assert_eq!(f.offline_until(1, 150), None);
    }

    #[test]
    fn overlapping_windows_report_the_latest_end() {
        let f = SeededFaults::new(
            FaultConfig::new(1)
                .with_offline(OfflineWindow {
                    disk: 0,
                    start_ns: 0,
                    end_ns: 50,
                })
                .with_offline(OfflineWindow {
                    disk: 0,
                    start_ns: 10,
                    end_ns: 90,
                }),
        );
        assert_eq!(f.offline_until(0, 20), Some(90));
    }

    #[test]
    fn stats_merge_and_render() {
        let mut a = FaultStats {
            media_read_errors: 1,
            retries: 2,
            ..FaultStats::default()
        };
        let b = FaultStats {
            media_read_errors: 3,
            lost_dirty_blocks: 5,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.media_read_errors, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.lost_dirty_blocks, 5);
        assert!(!a.is_trivial());
        assert!(FaultStats::default().is_trivial());
        let s = a.to_string();
        assert!(s.contains("media errors 4r/0w"));
        assert!(s.contains("lost dirty 5"));
    }
}
