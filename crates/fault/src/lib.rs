//! # forhdc-fault
//!
//! Deterministic, seeded fault schedules for the simulated disk array.
//!
//! The simulator is generic over a [`FaultModel`], mirroring the
//! tracer facade: the default [`NoFaults`] answers `enabled() ==
//! false` as a compile-time constant, so every fault probe in the hot
//! path monomorphizes away and an unfaulted run is byte-identical to
//! one built before this crate existed (test-enforced, like
//! traced==untraced).
//!
//! [`SeededFaults`] implements four fault kinds:
//!
//! - **Media errors** — persistent per-block bad sectors. Whether a
//!   block is bad is a pure function of `(seed, disk, block, r/w)`
//!   via a splitmix64-style finalizer, so the answer does not depend
//!   on visit order: the same schedule yields the same fault sequence
//!   no matter how the runner parallelizes points.
//! - **Bus errors** — transient per-transfer faults drawn from a
//!   seeded RNG stream; a retry of the same transfer rolls again.
//! - **Offline windows** — per-disk intervals of simulated time in
//!   which the disk accepts no media operations; queued work resumes
//!   when the window closes.
//! - **Power loss** — periodic controller power-loss events that
//!   discard volatile cache contents; dirty HDC blocks that were not
//!   yet flushed become *lost writes*.
//!
//! The engine only *decides* faults; the recovery policy (retries,
//! backoff, timeouts, degraded read-ahead) lives in `forhdc-core`,
//! which also tallies the outcome into a [`FaultStats`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A closed-open interval of simulated time during which one disk is
/// offline (accepts no new media operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineWindow {
    /// Physical disk id.
    pub disk: u16,
    /// Window start, in simulated nanoseconds (inclusive).
    pub start_ns: u64,
    /// Window end, in simulated nanoseconds (exclusive).
    pub end_ns: u64,
}

/// The full description of a seeded fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Root seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Probability that any given block is a persistent read-bad
    /// sector.
    pub read_error_rate: f64,
    /// Probability that any given block is a persistent write-bad
    /// sector.
    pub write_error_rate: f64,
    /// Probability that one bus transfer fails transiently.
    pub bus_error_rate: f64,
    /// Scheduled whole-disk offline windows.
    pub offline: Vec<OfflineWindow>,
    /// Controller power-loss period in simulated nanoseconds; `None`
    /// disables power-loss events.
    pub power_loss_period_ns: Option<u64>,
}

impl FaultConfig {
    /// A schedule with every fault disabled, rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            bus_error_rate: 0.0,
            offline: Vec::new(),
            power_loss_period_ns: None,
        }
    }

    /// Sets the persistent media bad-sector probabilities.
    pub fn with_media_rates(mut self, read: f64, write: f64) -> Self {
        self.read_error_rate = read;
        self.write_error_rate = write;
        self
    }

    /// Sets the transient bus-error probability.
    pub fn with_bus_rate(mut self, rate: f64) -> Self {
        self.bus_error_rate = rate;
        self
    }

    /// Adds a whole-disk offline window.
    pub fn with_offline(mut self, window: OfflineWindow) -> Self {
        self.offline.push(window);
        self
    }

    /// Enables periodic controller power loss every `period_ns`.
    pub fn with_power_loss_period_ns(mut self, period_ns: u64) -> Self {
        self.power_loss_period_ns = Some(period_ns);
        self
    }
}

/// The fault-decision interface the simulator is generic over.
///
/// Every method has a "nothing happens" default so [`NoFaults`] is an
/// empty impl; `enabled()` gates every call site, letting the default
/// monomorphize to straight-line fault-free code.
pub trait FaultModel {
    /// Whether this model can ever inject a fault. Call sites guard on
    /// this so the `NoFaults` instantiation compiles the fault paths
    /// out entirely.
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    /// Whether `block` on `disk` is a persistent bad sector for the
    /// given direction. Must be a pure function of its arguments (and
    /// the seed) — order-independence is what keeps parallel runs
    /// deterministic.
    #[inline(always)]
    fn media_error(&self, _disk: u16, _block: u64, _write: bool) -> bool {
        false
    }

    /// Rolls one transient bus-transfer fault. Stateful: consecutive
    /// calls advance a seeded stream, so a retry rolls fresh.
    #[inline(always)]
    fn bus_error(&mut self) -> bool {
        false
    }

    /// If `disk` is offline at `now_ns`, the simulated time at which
    /// it comes back online.
    #[inline(always)]
    fn offline_until(&self, _disk: u16, _now_ns: u64) -> Option<u64> {
        None
    }

    /// Controller power-loss period, if the schedule has one.
    #[inline(always)]
    fn power_loss_period_ns(&self) -> Option<u64> {
        None
    }
}

/// The zero-overhead default: no faults, ever.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultModel for NoFaults {}

/// A deterministic fault engine driven by a [`FaultConfig`].
#[derive(Debug, Clone)]
pub struct SeededFaults {
    cfg: FaultConfig,
    bus: StdRng,
}

impl SeededFaults {
    /// Builds the engine; the bus stream is derived from the config
    /// seed.
    pub fn new(cfg: FaultConfig) -> Self {
        let bus = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xB5);
        SeededFaults { cfg, bus }
    }

    /// The schedule this engine runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }
}

/// Splitmix64-style finalizer: maps `(seed, disk, block, salt)` to a
/// uniform f64 in `[0, 1)` using the same 53-bit mantissa mapping as
/// the workspace RNG. Stateless, so bad sectors are a property of the
/// schedule, not of the visit order.
fn hash_u01(seed: u64, disk: u16, block: u64, salt: u64) -> f64 {
    let mut x = seed
        ^ (disk as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)
        ^ block.wrapping_mul(0xD1B54A32D192ED03)
        ^ salt;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const READ_SALT: u64 = 0x52;
const WRITE_SALT: u64 = 0x57;

impl FaultModel for SeededFaults {
    #[inline(always)]
    fn enabled(&self) -> bool {
        true
    }

    fn media_error(&self, disk: u16, block: u64, write: bool) -> bool {
        let (rate, salt) = if write {
            (self.cfg.write_error_rate, WRITE_SALT)
        } else {
            (self.cfg.read_error_rate, READ_SALT)
        };
        // `x < 0.0` is false for every x in [0, 1), so a zero rate
        // never faults without a special case.
        hash_u01(self.cfg.seed, disk, block, salt) < rate
    }

    fn bus_error(&mut self) -> bool {
        // Skip the draw entirely at rate zero so a zero-rate schedule
        // is behaviorally indistinguishable from `NoFaults`.
        self.cfg.bus_error_rate > 0.0 && self.bus.gen_bool(self.cfg.bus_error_rate)
    }

    fn offline_until(&self, disk: u16, now_ns: u64) -> Option<u64> {
        self.cfg
            .offline
            .iter()
            .filter(|w| w.disk == disk && w.start_ns <= now_ns && now_ns < w.end_ns)
            .map(|w| w.end_ns)
            .max()
    }

    fn power_loss_period_ns(&self) -> Option<u64> {
        self.cfg.power_loss_period_ns
    }
}

/// Wall-clock recovery policy for the live serving path
/// (`forhdc-serve`): bounded retries with exponential backoff plus
/// deterministic jitter, and an optional per-request deadline that
/// preempts remaining retries. The simulator's `RecoveryPolicy`
/// (forhdc-core) is its sim-time twin; this one works in wall-clock
/// nanoseconds and derives its jitter from `(seed, request, attempt)`
/// with the same splitmix finalizer the media-error decision uses, so
/// a backoff schedule is a pure function of the schedule seed —
/// replayable, and unit-testable without sleeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallPolicy {
    /// Retries allowed per operation after the initial attempt fails.
    pub max_retries: u32,
    /// Backoff before the first retry; retry `n` (1-based) waits
    /// `base << (n-1)` plus jitter.
    pub backoff_base_ns: u64,
    /// Upper bound on any single backoff, jitter included.
    pub backoff_cap_ns: u64,
    /// Per-request deadline; a request older than this fails with a
    /// timeout instead of spending its remaining retries (`None` =
    /// no deadline).
    pub deadline_ns: Option<u64>,
}

impl Default for WallPolicy {
    fn default() -> Self {
        WallPolicy {
            max_retries: 3,
            backoff_base_ns: 2_000_000,  // 2 ms
            backoff_cap_ns: 200_000_000, // 200 ms
            deadline_ns: None,
        }
    }
}

impl WallPolicy {
    /// Backoff before retry `attempt` (1-based): exponential with up
    /// to +50% deterministic jitter, capped. Pure in
    /// `(seed, req, attempt)`.
    pub fn backoff_ns(&self, seed: u64, req: u64, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self.backoff_base_ns.saturating_mul(1u64 << shift);
        let jitter = hash_u01(seed, attempt as u16, req, JITTER_SALT);
        let jittered = exp.saturating_add((exp as f64 * 0.5 * jitter) as u64);
        jittered.min(self.backoff_cap_ns)
    }

    /// Whether a request `elapsed_ns` old has crossed the deadline.
    pub fn expired(&self, elapsed_ns: u64) -> bool {
        self.deadline_ns.is_some_and(|d| elapsed_ns >= d)
    }

    /// The backoff to wait before retry `attempt` (1-based), or `None`
    /// when recovery should stop: retries exhausted, the deadline
    /// already passed, or waiting out the backoff would cross the
    /// deadline (the deadline preempts remaining retries).
    pub fn next_backoff_ns(
        &self,
        seed: u64,
        req: u64,
        attempt: u32,
        elapsed_ns: u64,
    ) -> Option<u64> {
        if attempt > self.max_retries || self.expired(elapsed_ns) {
            return None;
        }
        let backoff = self.backoff_ns(seed, req, attempt);
        match self.deadline_ns {
            Some(d) if elapsed_ns.saturating_add(backoff) >= d => None,
            _ => Some(backoff),
        }
    }
}

const JITTER_SALT: u64 = 0x4A;

/// Parses a wall-clock offline-window spec for the live server:
/// `DISK@START_MS+LEN_MS` entries joined by `;`, e.g.
/// `0@500+300;1@0+100` (disk 0 offline from t=500ms for 300ms, disk 1
/// from startup for 100ms). Times are relative to server start;
/// returned windows are in nanoseconds, compatible with
/// [`FaultModel::offline_until`].
pub fn parse_offline_spec(spec: &str) -> Result<Vec<OfflineWindow>, String> {
    let mut windows = Vec::new();
    for part in spec.split(';').filter(|p| !p.is_empty()) {
        let (disk, rest) = part
            .split_once('@')
            .ok_or_else(|| format!("offline entry '{part}': want DISK@START_MS+LEN_MS"))?;
        let (start, len) = rest
            .split_once('+')
            .ok_or_else(|| format!("offline entry '{part}': want DISK@START_MS+LEN_MS"))?;
        let disk: u16 = disk
            .parse()
            .map_err(|e| format!("offline entry '{part}': disk: {e}"))?;
        let start_ms: u64 = start
            .parse()
            .map_err(|e| format!("offline entry '{part}': start: {e}"))?;
        let len_ms: u64 = len
            .parse()
            .map_err(|e| format!("offline entry '{part}': length: {e}"))?;
        if len_ms == 0 {
            return Err(format!("offline entry '{part}': zero-length window"));
        }
        windows.push(OfflineWindow {
            disk,
            start_ns: start_ms * 1_000_000,
            end_ns: (start_ms + len_ms) * 1_000_000,
        });
    }
    Ok(windows)
}

/// Degraded-mode tallies: what the recovery policy observed and did.
/// Merged across disks/points like the cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Media read operations that hit a bad sector.
    pub media_read_errors: u64,
    /// Media write operations that hit a bad sector.
    pub media_write_errors: u64,
    /// Transient bus-transfer faults observed.
    pub bus_errors: u64,
    /// Retries issued (media + bus).
    pub retries: u64,
    /// Read-ahead extensions aborted because the speculative suffix
    /// crossed a bad sector (the demand prefix still completed).
    pub ra_aborts: u64,
    /// Host requests completed with an error after retry exhaustion
    /// or timeout.
    pub failed_requests: u64,
    /// Requests that exceeded the configured per-request timeout.
    pub timeouts: u64,
    /// Controller power-loss events delivered.
    pub power_losses: u64,
    /// Dirty HDC blocks lost to power loss or failed flushes — writes
    /// the host believed durable-in-controller that never reached the
    /// media.
    pub lost_dirty_blocks: u64,
    /// HDC flush write-backs that failed on the media (blocks were
    /// re-marked dirty for a later flush where possible).
    pub flush_failures: u64,
    /// Media operations delayed because the target disk was offline.
    pub offline_stalls: u64,
    /// Mirrored reads steered away from the policy's pick because that
    /// member was inside an offline window (degraded-mode routing).
    pub failover_reads: u64,
    /// Blocks copied onto a rebuilding mirror member from its twin.
    pub rebuilt_blocks: u64,
}

impl FaultStats {
    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.media_read_errors += other.media_read_errors;
        self.media_write_errors += other.media_write_errors;
        self.bus_errors += other.bus_errors;
        self.retries += other.retries;
        self.ra_aborts += other.ra_aborts;
        self.failed_requests += other.failed_requests;
        self.timeouts += other.timeouts;
        self.power_losses += other.power_losses;
        self.lost_dirty_blocks += other.lost_dirty_blocks;
        self.flush_failures += other.flush_failures;
        self.offline_stalls += other.offline_stalls;
        self.failover_reads += other.failover_reads;
        self.rebuilt_blocks += other.rebuilt_blocks;
    }

    /// Whether every counter is zero (the report omits the degraded
    /// section for a clean run).
    pub fn is_trivial(&self) -> bool {
        *self == FaultStats::default()
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "media errors {}r/{}w, bus errors {}, retries {}, ra aborts {}, \
             failed requests {}, timeouts {}, power losses {}, lost dirty {}, \
             flush failures {}, offline stalls {}, failover reads {}, \
             rebuilt blocks {}",
            self.media_read_errors,
            self.media_write_errors,
            self.bus_errors,
            self.retries,
            self.ra_aborts,
            self.failed_requests,
            self.timeouts,
            self.power_losses,
            self.lost_dirty_blocks,
            self.flush_failures,
            self.offline_stalls,
            self.failover_reads,
            self.rebuilt_blocks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inert() {
        let mut f = NoFaults;
        assert!(!f.enabled());
        assert!(!f.media_error(0, 0, false));
        assert!(!f.bus_error());
        assert_eq!(f.offline_until(0, 0), None);
        assert_eq!(f.power_loss_period_ns(), None);
    }

    #[test]
    fn media_errors_are_pure_and_order_independent() {
        let f = SeededFaults::new(FaultConfig::new(42).with_media_rates(0.01, 0.01));
        let forward: Vec<bool> = (0..10_000).map(|b| f.media_error(3, b, false)).collect();
        let backward: Vec<bool> = (0..10_000)
            .rev()
            .map(|b| f.media_error(3, b, false))
            .collect();
        let backward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        // Another engine with the same seed agrees block for block.
        let g = SeededFaults::new(FaultConfig::new(42).with_media_rates(0.01, 0.01));
        assert!((0..10_000).all(|b| f.media_error(3, b, false) == g.media_error(3, b, false)));
    }

    #[test]
    fn media_rate_extremes() {
        let zero = SeededFaults::new(FaultConfig::new(7));
        assert!((0..5_000).all(|b| !zero.media_error(0, b, false)));
        assert!((0..5_000).all(|b| !zero.media_error(0, b, true)));
        let one = SeededFaults::new(FaultConfig::new(7).with_media_rates(1.0, 1.0));
        assert!((0..5_000).all(|b| one.media_error(0, b, false)));
    }

    #[test]
    fn media_rate_hits_roughly_the_target() {
        let f = SeededFaults::new(FaultConfig::new(9).with_media_rates(0.01, 0.0));
        let hits = (0..100_000).filter(|&b| f.media_error(0, b, false)).count();
        assert!((500..2_000).contains(&hits), "hits = {hits}");
        // Write direction uses an independent stream; rate 0 ⇒ none.
        assert!((0..100_000).all(|b| !f.media_error(0, b, true)));
    }

    #[test]
    fn read_and_write_bad_sectors_are_independent() {
        let f = SeededFaults::new(FaultConfig::new(11).with_media_rates(0.05, 0.05));
        let both = (0..50_000)
            .filter(|&b| f.media_error(0, b, false) && f.media_error(0, b, true))
            .count();
        let reads = (0..50_000).filter(|&b| f.media_error(0, b, false)).count();
        // If the streams were identical, both == reads.
        assert!(both < reads / 2, "both = {both}, reads = {reads}");
    }

    #[test]
    fn bus_stream_is_seed_deterministic() {
        let cfg = FaultConfig::new(5).with_bus_rate(0.3);
        let mut a = SeededFaults::new(cfg.clone());
        let mut b = SeededFaults::new(cfg);
        let sa: Vec<bool> = (0..1000).map(|_| a.bus_error()).collect();
        let sb: Vec<bool> = (0..1000).map(|_| b.bus_error()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&x| x));
        assert!(sa.iter().any(|&x| !x));
    }

    #[test]
    fn zero_bus_rate_never_draws() {
        let mut f = SeededFaults::new(FaultConfig::new(5));
        assert!((0..100).all(|_| !f.bus_error()));
    }

    #[test]
    fn offline_windows_gate_by_disk_and_time() {
        let f = SeededFaults::new(FaultConfig::new(1).with_offline(OfflineWindow {
            disk: 2,
            start_ns: 100,
            end_ns: 200,
        }));
        assert_eq!(f.offline_until(2, 99), None);
        assert_eq!(f.offline_until(2, 100), Some(200));
        assert_eq!(f.offline_until(2, 199), Some(200));
        assert_eq!(f.offline_until(2, 200), None);
        assert_eq!(f.offline_until(1, 150), None);
    }

    #[test]
    fn overlapping_windows_report_the_latest_end() {
        let f = SeededFaults::new(
            FaultConfig::new(1)
                .with_offline(OfflineWindow {
                    disk: 0,
                    start_ns: 0,
                    end_ns: 50,
                })
                .with_offline(OfflineWindow {
                    disk: 0,
                    start_ns: 10,
                    end_ns: 90,
                }),
        );
        assert_eq!(f.offline_until(0, 20), Some(90));
    }

    #[test]
    fn wall_backoff_is_deterministic_in_the_seed() {
        let p = WallPolicy::default();
        for attempt in 1..=5 {
            for req in [0u64, 7, 1 << 40] {
                assert_eq!(
                    p.backoff_ns(42, req, attempt),
                    p.backoff_ns(42, req, attempt)
                );
            }
        }
        // A different seed jitters differently somewhere in the grid.
        assert!((1..=5).any(|a| p.backoff_ns(1, 9, a) != p.backoff_ns(2, 9, a)));
        // Jitter stays within [exp, 1.5*exp] before the cap.
        let exp = p.backoff_base_ns;
        let b = p.backoff_ns(3, 3, 1);
        assert!(b >= exp && b <= exp + exp / 2, "b = {b}");
    }

    #[test]
    fn wall_backoff_grows_and_respects_the_cap() {
        let p = WallPolicy {
            max_retries: 40,
            backoff_base_ns: 1_000,
            backoff_cap_ns: 50_000,
            deadline_ns: None,
        };
        let series: Vec<u64> = (1..=12).map(|a| p.backoff_ns(5, 0, a)).collect();
        // Exponential until the cap, then pinned at the cap.
        assert!(series.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*series.last().unwrap(), 50_000);
        assert!(series[0] < 2_000);
        // Huge attempt numbers cannot overflow the shift.
        assert_eq!(p.backoff_ns(5, 0, 1_000_000), 50_000);
    }

    #[test]
    fn wall_deadline_preempts_remaining_retries() {
        let p = WallPolicy {
            max_retries: 10,
            backoff_base_ns: 1_000_000,
            backoff_cap_ns: 100_000_000,
            deadline_ns: Some(5_000_000),
        };
        // Fresh request: retries proceed.
        assert!(p.next_backoff_ns(1, 0, 1, 0).is_some());
        // Past the deadline: no retry even though 9 remain.
        assert!(p.next_backoff_ns(1, 0, 2, 5_000_000).is_none());
        assert!(p.expired(5_000_000));
        // Waiting out the backoff would cross the deadline: preempted.
        assert!(p.next_backoff_ns(1, 0, 3, 4_500_000).is_none());
        assert!(!p.expired(4_500_000));
        // Retries exhausted ends recovery too.
        let q = WallPolicy {
            max_retries: 2,
            deadline_ns: None,
            ..p
        };
        assert!(q.next_backoff_ns(1, 0, 2, 0).is_some());
        assert!(q.next_backoff_ns(1, 0, 3, 0).is_none());
    }

    #[test]
    fn offline_spec_parses_and_rejects() {
        let ws = parse_offline_spec("0@500+300;1@0+100").unwrap();
        assert_eq!(
            ws,
            vec![
                OfflineWindow {
                    disk: 0,
                    start_ns: 500_000_000,
                    end_ns: 800_000_000,
                },
                OfflineWindow {
                    disk: 1,
                    start_ns: 0,
                    end_ns: 100_000_000,
                },
            ]
        );
        assert!(parse_offline_spec("").unwrap().is_empty());
        for bad in ["1@5", "x@1+2", "1@x+2", "1@2+x", "1@2+0", "nope"] {
            assert!(parse_offline_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn stats_merge_and_render() {
        let mut a = FaultStats {
            media_read_errors: 1,
            retries: 2,
            ..FaultStats::default()
        };
        let b = FaultStats {
            media_read_errors: 3,
            lost_dirty_blocks: 5,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.media_read_errors, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.lost_dirty_blocks, 5);
        assert!(!a.is_trivial());
        assert!(FaultStats::default().is_trivial());
        let s = a.to_string();
        assert!(s.contains("media errors 4r/0w"));
        assert!(s.contains("lost dirty 5"));
    }
}
