//! One disk's controller: read-ahead cache + HDC region + the
//! read-ahead decision.
//!
//! The controller checks its cache *before queuing* a request (§6.1).
//! A read whose blocks are all resident (in the HDC region or the
//! read-ahead cache) is served over the bus without a mechanical
//! operation; a write whose blocks are all pinned is absorbed into the
//! HDC region (marked dirty, synced by `flush_hdc()`). Everything else
//! queues for the media, and on a read miss the serviced extent is
//! extended by the active read-ahead discipline.

use forhdc_cache::{
    BlockCache, BlockReplacement, CacheStats, ControllerCache, HdcRegion, HdcStats, SegmentCache,
    SegmentReplacement,
};
use forhdc_layout::ForBitmap;
use forhdc_sim::{DiskConfig, PhysBlock, ReadWrite};

use crate::policy::ReadAheadKind;

/// The controller's decision for an arriving extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerDecision {
    /// Served from controller memory: only a bus transfer is needed.
    CacheHit,
    /// Write absorbed by pinned HDC blocks: bus transfer, no media op.
    HdcWriteAbsorbed,
    /// Needs the media; the op to schedule (read-ahead already applied
    /// for reads).
    Media {
        /// First block of the media operation.
        start: PhysBlock,
        /// Total blocks to move, including read-ahead.
        nblocks: u32,
        /// Of `nblocks`, how many were speculative read-ahead.
        read_ahead: u32,
    },
}

#[derive(Debug)]
enum CacheOrg {
    Segment(SegmentCache),
    Block(BlockCache),
}

impl CacheOrg {
    fn as_cache_ref(&self) -> &dyn ControllerCache {
        match self {
            CacheOrg::Segment(c) => c,
            CacheOrg::Block(c) => c,
        }
    }

    // Statically dispatched per-block operations: these run once per
    // block of every request, and through a `&mut dyn ControllerCache`
    // each would be an indirect call the optimizer cannot inline.

    #[inline]
    fn touch(&mut self, block: PhysBlock) -> bool {
        match self {
            CacheOrg::Segment(c) => c.touch(block),
            CacheOrg::Block(c) => c.touch(block),
        }
    }

    #[inline]
    fn contains(&self, block: PhysBlock) -> bool {
        match self {
            CacheOrg::Segment(c) => c.contains(block),
            CacheOrg::Block(c) => c.contains(block),
        }
    }

    #[inline]
    fn insert_run(&mut self, start: PhysBlock, nblocks: u32, requested: u32) {
        match self {
            CacheOrg::Segment(c) => c.insert_run(start, nblocks, requested),
            CacheOrg::Block(c) => c.insert_run(start, nblocks, requested),
        }
    }

    #[inline]
    fn record_extent(&mut self, hit: bool) {
        match self {
            CacheOrg::Segment(c) => c.record_extent(hit),
            CacheOrg::Block(c) => c.record_extent(hit),
        }
    }
}

/// One disk's controller state.
///
/// # Example
///
/// ```
/// use forhdc_core::{DiskController, ReadAheadKind};
/// use forhdc_sim::{DiskConfig, PhysBlock, ReadWrite};
/// use forhdc_core::controller::ControllerDecision;
///
/// let cfg = DiskConfig::default();
/// let mut ctl = DiskController::new(&cfg, ReadAheadKind::BlindSegment, 0, None);
/// // Cold cache: a 4-block read misses and is extended to a whole
/// // 32-block segment by blind read-ahead.
/// match ctl.on_request(ReadWrite::Read, PhysBlock::new(1000), 4) {
///     ControllerDecision::Media { nblocks, read_ahead, .. } => {
///         assert_eq!(nblocks, 32);
///         assert_eq!(read_ahead, 28);
///     }
///     other => panic!("expected media op, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
pub struct DiskController {
    cache: CacheOrg,
    hdc: HdcRegion,
    policy: ReadAheadKind,
    bitmap: Option<ForBitmap>,
    max_ra_blocks: u32,
    capacity_blocks: u64,
    blocks_per_track: u32,
    bitmap_scans: u64,
}

impl DiskController {
    /// Creates a controller for a disk described by `cfg`, running
    /// `policy`, with `hdc_blocks` of the cache handed to the host and
    /// the rest organized as the policy's read-ahead cache.
    ///
    /// `bitmap` must be `Some` iff the policy is FOR.
    ///
    /// # Panics
    ///
    /// Panics if the HDC region leaves no read-ahead cache, or if the
    /// bitmap presence does not match the policy.
    pub fn new(
        cfg: &DiskConfig,
        policy: ReadAheadKind,
        hdc_blocks: u32,
        bitmap: Option<ForBitmap>,
    ) -> Self {
        assert_eq!(
            bitmap.is_some(),
            policy.needs_bitmap(),
            "FOR needs a continuation bitmap; other policies must not carry one"
        );
        let total = cfg.cache_blocks();
        // The FOR bitmap itself consumes controller memory (Table 1:
        // 546 KB); charge it to the read-ahead cache.
        let bitmap_blocks = bitmap
            .as_ref()
            .map(|b| (b.size_bytes().div_ceil(cfg.block_bytes() as u64)) as u32)
            .unwrap_or(0);
        assert!(
            hdc_blocks + bitmap_blocks < total,
            "HDC region ({hdc_blocks}) + bitmap ({bitmap_blocks}) leaves no read-ahead cache of {total}"
        );
        let ra_blocks = total - hdc_blocks - bitmap_blocks;
        let cache = if policy.uses_block_cache() {
            CacheOrg::Block(BlockCache::new(ra_blocks, BlockReplacement::Mru))
        } else {
            // Segment cache scaled down proportionally when HDC takes
            // memory: fewer whole segments.
            let seg_blocks = cfg.segment_blocks();
            let segments = (ra_blocks / seg_blocks).clamp(1, cfg.segments);
            CacheOrg::Segment(SegmentCache::new(
                segments,
                seg_blocks,
                SegmentReplacement::Lru,
            ))
        };
        DiskController {
            cache,
            hdc: HdcRegion::new(hdc_blocks),
            policy,
            bitmap,
            max_ra_blocks: cfg.segment_blocks(),
            capacity_blocks: cfg.geometry.capacity_blocks(),
            blocks_per_track: cfg.geometry.blocks_per_track(),
            bitmap_scans: 0,
        }
    }

    /// Replaces the default replacement policies (ablation hook). Only
    /// meaningful before traffic flows.
    pub fn with_replacement(
        mut self,
        block: BlockReplacement,
        segment: SegmentReplacement,
    ) -> Self {
        self.cache = match self.cache {
            CacheOrg::Block(c) => CacheOrg::Block(BlockCache::new(c.capacity_blocks(), block)),
            CacheOrg::Segment(c) => CacheOrg::Segment(SegmentCache::new(
                c.segment_count(),
                c.segment_blocks(),
                segment,
            )),
        };
        self
    }

    /// The active read-ahead discipline.
    pub fn policy(&self) -> ReadAheadKind {
        self.policy
    }

    /// Whether every block of the extent is resident (HDC or
    /// read-ahead cache), without touching recency or statistics —
    /// used for mirrored read-replica selection ("closest copy").
    pub fn covers(&self, start: PhysBlock, nblocks: u32) -> bool {
        (0..nblocks as u64).all(|i| {
            let b = start.offset(i);
            self.hdc.contains(b) || self.cache.contains(b)
        })
    }

    /// Handles an arriving extent: classifies it as a cache hit, an
    /// absorbed HDC write, or a media operation (read-ahead applied).
    pub fn on_request(
        &mut self,
        kind: ReadWrite,
        start: PhysBlock,
        nblocks: u32,
    ) -> ControllerDecision {
        debug_assert!(nblocks > 0);
        match kind {
            ReadWrite::Read => {
                // Account HDC and RA-cache lookups per block; a hit
                // needs every block in the union of the two regions.
                // With nothing pinned (the common non-HDC configs) the
                // per-block HDC probes are all misses — count them in
                // bulk and probe only the read-ahead cache.
                let mut all = true;
                if self.hdc.is_empty() {
                    self.hdc.note_misses(nblocks as u64, 0);
                    for i in 0..nblocks as u64 {
                        if !self.cache.touch(start.offset(i)) {
                            all = false;
                        }
                    }
                } else {
                    for i in 0..nblocks as u64 {
                        let b = start.offset(i);
                        let in_hdc = self.hdc.read(b);
                        let in_cache = self.cache.touch(b);
                        if !in_hdc && !in_cache {
                            all = false;
                        }
                    }
                }
                self.cache.record_extent(all);
                if all {
                    return ControllerDecision::CacheHit;
                }
                let read_ahead = self.read_ahead_for(start, nblocks);
                ControllerDecision::Media {
                    start,
                    nblocks: nblocks + read_ahead,
                    read_ahead,
                }
            }
            ReadWrite::Write => {
                // A write absorbed by HDC requires every block pinned.
                let all_pinned = (0..nblocks as u64).all(|i| self.hdc.contains(start.offset(i)));
                if all_pinned && nblocks > 0 {
                    for i in 0..nblocks as u64 {
                        self.hdc.write(start.offset(i));
                    }
                    return ControllerDecision::HdcWriteAbsorbed;
                }
                // Media write; keep cached copies fresh (touch) but do
                // not insert new blocks, and count the HDC misses.
                if self.hdc.is_empty() {
                    self.hdc.note_misses(0, nblocks as u64);
                    for i in 0..nblocks as u64 {
                        self.cache.touch(start.offset(i));
                    }
                } else {
                    for i in 0..nblocks as u64 {
                        let b = start.offset(i);
                        self.hdc.write(b);
                        self.cache.touch(b);
                    }
                }
                ControllerDecision::Media {
                    start,
                    nblocks,
                    read_ahead: 0,
                }
            }
        }
    }

    /// Read-ahead extension for a miss at `[start, start+nblocks)`,
    /// clipped to the disk capacity.
    fn read_ahead_for(&mut self, start: PhysBlock, nblocks: u32) -> u32 {
        let want = match self.policy {
            ReadAheadKind::None => 0,
            ReadAheadKind::BlindSegment | ReadAheadKind::BlindBlock => {
                // Fill a segment's worth starting at the miss.
                self.max_ra_blocks.saturating_sub(nblocks)
            }
            ReadAheadKind::For => {
                let last = start.offset(nblocks as u64 - 1);
                let max = self.max_ra_blocks.saturating_sub(nblocks);
                let bitmap = self.bitmap.as_ref().expect("FOR carries a bitmap");
                let n = bitmap.run_ahead(last, max);
                self.bitmap_scans += n as u64 + 1;
                n
            }
            ReadAheadKind::PartialTrack => {
                // Read to the end of the current track, capped by the
                // segment-sized read-ahead limit.
                let end = start.index() + nblocks as u64;
                let track_left = self.blocks_per_track as u64 - end % self.blocks_per_track as u64;
                let track_left = if track_left == self.blocks_per_track as u64 {
                    0
                } else {
                    track_left
                };
                (track_left as u32).min(self.max_ra_blocks.saturating_sub(nblocks))
            }
        };
        let end = start.index() + nblocks as u64 + want as u64;
        if end > self.capacity_blocks {
            want - (end - self.capacity_blocks) as u32
        } else {
            want
        }
    }

    /// Installs the blocks a completed media operation moved. Reads
    /// populate the read-ahead cache (demanded prefix + read-ahead
    /// suffix); writes leave the cache untouched (copies were already
    /// refreshed at classification time).
    pub fn on_media_complete(
        &mut self,
        kind: ReadWrite,
        start: PhysBlock,
        nblocks: u32,
        requested: u32,
    ) {
        if kind.is_read() {
            self.cache.insert_run(start, nblocks, requested);
        }
    }

    /// Pins `block` into the HDC region (host `pin_blk()`), reporting
    /// whether it succeeded (region not full).
    pub fn pin(&mut self, block: PhysBlock) -> bool {
        self.hdc.pin(block).is_ok()
    }

    /// Unpins `block` (host `unpin_blk()`), returning its dirty bit if
    /// it was pinned. Victim-cache entries are clean by construction,
    /// so callers rarely need the flag.
    pub fn unpin(&mut self, block: PhysBlock) -> Option<bool> {
        self.hdc.unpin(block)
    }

    /// Flushes dirty HDC blocks (host `flush_hdc()`), returning the
    /// blocks to write back.
    pub fn flush_hdc(&mut self) -> Vec<PhysBlock> {
        self.hdc.flush()
    }

    /// [`DiskController::flush_hdc`] into a caller-owned buffer, so the
    /// periodic flush path allocates nothing per cycle.
    pub fn flush_hdc_into(&mut self, out: &mut Vec<PhysBlock>) {
        self.hdc.flush_into(out);
    }

    /// Undoes a failed flush write-back: re-marks `blocks` dirty where
    /// still pinned, reverts their flushed accounting, and returns how
    /// many were lost (unpinned in the meantime). See
    /// [`HdcRegion::unflush`].
    pub fn unflush_hdc(&mut self, blocks: &[PhysBlock]) -> u64 {
        self.hdc.unflush(blocks)
    }

    /// Controller power loss: volatile cache contents vanish. The
    /// read-ahead cache only ever holds clean copies, so its loss is
    /// invisible to correctness; the HDC region's dirty blocks are
    /// *lost writes*, returned as a count. Pins survive (the host
    /// re-loads them).
    pub fn discard_dirty_hdc(&mut self) -> u64 {
        self.hdc.discard_dirty()
    }

    /// Clean→dirty HDC transitions over the controller's lifetime
    /// (conservation accounting).
    pub fn hdc_dirtied(&self) -> u64 {
        self.hdc.dirtied()
    }

    /// Dirty HDC blocks handed back by unpins.
    pub fn hdc_dirty_unpins(&self) -> u64 {
        self.hdc.dirty_unpins()
    }

    /// Read-ahead cache statistics.
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.as_cache_ref().stats()
    }

    /// HDC region statistics.
    pub fn hdc_stats(&self) -> &HdcStats {
        self.hdc.stats()
    }

    /// Blocks currently pinned.
    pub fn hdc_resident(&self) -> u32 {
        self.hdc.len()
    }

    /// Pinned blocks currently dirty (conservation accounting).
    pub fn hdc_dirty_count(&self) -> u32 {
        self.hdc.dirty_count()
    }

    /// Total FOR bitmap bits examined (the "new functionality" cost the
    /// simulation charges).
    pub fn bitmap_scans(&self) -> u64 {
        self.bitmap_scans
    }

    /// Read-ahead cache capacity in blocks (after HDC and bitmap
    /// carve-outs).
    pub fn ra_capacity_blocks(&self) -> u32 {
        self.cache.as_cache_ref().capacity_blocks()
    }

    /// Blocks currently resident in the read-ahead cache (occupancy
    /// sampling).
    pub fn ra_resident_blocks(&self) -> u32 {
        self.cache.as_cache_ref().resident_blocks()
    }

    /// Checked-mode structural validation of this controller
    /// (DESIGN.md §6.5): the read-ahead cache's and HDC region's own
    /// `check_coherence()` plus the cross-region occupancy bound —
    /// resident read-ahead blocks never exceed the capacity left after
    /// the HDC hand-off. O(cache + pinned); called only from audit
    /// points behind `Auditor::enabled()`.
    pub fn audit(&self) -> Result<(), String> {
        match &self.cache {
            CacheOrg::Segment(c) => c
                .check_coherence()
                .map_err(|e| format!("segment cache: {e}"))?,
            CacheOrg::Block(c) => c
                .check_coherence()
                .map_err(|e| format!("block cache: {e}"))?,
        }
        self.hdc
            .check_coherence()
            .map_err(|e| format!("HDC region: {e}"))?;
        let ra = self.cache.as_cache_ref();
        if ra.resident_blocks() > ra.capacity_blocks() {
            return Err(format!(
                "read-ahead cache holds {} blocks over its {}-block share",
                ra.resident_blocks(),
                ra.capacity_blocks()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_sim::DiskConfig;

    fn cfg() -> DiskConfig {
        DiskConfig::default()
    }

    fn bitmap_all_continuing(n: u64) -> ForBitmap {
        let mut bm = ForBitmap::new(n);
        for i in 1..n {
            bm.set(PhysBlock::new(i), true);
        }
        bm
    }

    #[test]
    fn blind_segment_reads_whole_segment() {
        let mut c = DiskController::new(&cfg(), ReadAheadKind::BlindSegment, 0, None);
        match c.on_request(ReadWrite::Read, PhysBlock::new(100), 4) {
            ControllerDecision::Media {
                start,
                nblocks,
                read_ahead,
            } => {
                assert_eq!(start, PhysBlock::new(100));
                assert_eq!(nblocks, 32);
                assert_eq!(read_ahead, 28);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_ra_reads_exactly_the_request() {
        let mut c = DiskController::new(&cfg(), ReadAheadKind::None, 0, None);
        match c.on_request(ReadWrite::Read, PhysBlock::new(100), 4) {
            ControllerDecision::Media {
                nblocks,
                read_ahead,
                ..
            } => {
                assert_eq!(nblocks, 4);
                assert_eq!(read_ahead, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_stops_at_file_boundary() {
        let mut bm = ForBitmap::new(1000);
        // Blocks 101..104 continue block 100; 104 starts another file.
        for i in 101..104 {
            bm.set(PhysBlock::new(i), true);
        }
        let mut c = DiskController::new(&cfg(), ReadAheadKind::For, 0, Some(bm));
        match c.on_request(ReadWrite::Read, PhysBlock::new(100), 1) {
            ControllerDecision::Media {
                nblocks,
                read_ahead,
                ..
            } => {
                assert_eq!(nblocks, 4); // 1 demanded + 3 continuations
                assert_eq!(read_ahead, 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(c.bitmap_scans() > 0);
    }

    #[test]
    fn for_respects_max_read_ahead() {
        let bm = bitmap_all_continuing(10_000);
        let mut c = DiskController::new(&cfg(), ReadAheadKind::For, 0, Some(bm));
        match c.on_request(ReadWrite::Read, PhysBlock::new(0), 2) {
            ControllerDecision::Media { nblocks, .. } => assert_eq!(nblocks, 32),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_track_stops_at_track_end() {
        let mut c = DiskController::new(&cfg(), ReadAheadKind::PartialTrack, 0, None);
        let bpt = cfg().geometry.blocks_per_track(); // 55 on the default drive
                                                     // A miss 3 blocks before the track end reads exactly to it.
        let start = PhysBlock::new(bpt as u64 - 4);
        match c.on_request(ReadWrite::Read, start, 1) {
            ControllerDecision::Media {
                nblocks,
                read_ahead,
                ..
            } => {
                assert_eq!(read_ahead, 3);
                assert_eq!(nblocks, 4);
            }
            other => panic!("{other:?}"),
        }
        // A miss ending exactly at a track boundary reads nothing ahead.
        match c.on_request(ReadWrite::Read, PhysBlock::new(2 * bpt as u64 - 1), 1) {
            ControllerDecision::Media { read_ahead, .. } => assert_eq!(read_ahead, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn read_hit_after_install() {
        let mut c = DiskController::new(&cfg(), ReadAheadKind::BlindBlock, 0, None);
        let d = c.on_request(ReadWrite::Read, PhysBlock::new(50), 4);
        let ControllerDecision::Media {
            start,
            nblocks,
            read_ahead,
        } = d
        else {
            panic!("{d:?}")
        };
        c.on_media_complete(ReadWrite::Read, start, nblocks, nblocks - read_ahead);
        // The demanded blocks and the read-ahead both hit now.
        assert_eq!(
            c.on_request(ReadWrite::Read, PhysBlock::new(50), 4),
            ControllerDecision::CacheHit
        );
        assert_eq!(
            c.on_request(ReadWrite::Read, PhysBlock::new(54), 8),
            ControllerDecision::CacheHit
        );
    }

    #[test]
    fn read_ahead_clipped_at_disk_end() {
        let mut c = DiskController::new(&cfg(), ReadAheadKind::BlindSegment, 0, None);
        let cap = cfg().geometry.capacity_blocks();
        match c.on_request(ReadWrite::Read, PhysBlock::new(cap - 2), 2) {
            ControllerDecision::Media {
                nblocks,
                read_ahead,
                ..
            } => {
                assert_eq!(nblocks, 2);
                assert_eq!(read_ahead, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hdc_absorbs_fully_pinned_writes_only() {
        let mut c = DiskController::new(&cfg(), ReadAheadKind::BlindSegment, 512, None);
        assert!(c.pin(PhysBlock::new(10)));
        assert!(c.pin(PhysBlock::new(11)));
        assert_eq!(
            c.on_request(ReadWrite::Write, PhysBlock::new(10), 2),
            ControllerDecision::HdcWriteAbsorbed
        );
        // Partially pinned: goes to the media.
        match c.on_request(ReadWrite::Write, PhysBlock::new(10), 3) {
            ControllerDecision::Media { nblocks, .. } => assert_eq!(nblocks, 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.flush_hdc(), vec![PhysBlock::new(10), PhysBlock::new(11)]);
    }

    #[test]
    fn hdc_serves_pinned_reads() {
        let mut c =
            DiskController::new(&cfg(), ReadAheadKind::For, 512, Some(ForBitmap::new(1000)));
        c.pin(PhysBlock::new(7));
        assert_eq!(
            c.on_request(ReadWrite::Read, PhysBlock::new(7), 1),
            ControllerDecision::CacheHit
        );
        assert_eq!(c.hdc_stats().read_hits, 1);
        assert_eq!(c.hdc_resident(), 1);
    }

    #[test]
    fn hdc_shrinks_read_ahead_cache() {
        let full = DiskController::new(&cfg(), ReadAheadKind::BlindBlock, 0, None);
        let carved = DiskController::new(&cfg(), ReadAheadKind::BlindBlock, 512, None);
        assert_eq!(full.ra_capacity_blocks(), 1024);
        assert_eq!(carved.ra_capacity_blocks(), 512);
    }

    #[test]
    fn for_pays_bitmap_memory() {
        let c = DiskController::new(
            &cfg(),
            ReadAheadKind::For,
            0,
            Some(ForBitmap::new(cfg().geometry.capacity_blocks())),
        );
        // ~549 KB of bitmap = 135 blocks carved out of 1024.
        assert!(c.ra_capacity_blocks() < 1024);
        assert!(c.ra_capacity_blocks() > 850);
    }

    #[test]
    fn segment_count_shrinks_with_hdc() {
        let c = DiskController::new(&cfg(), ReadAheadKind::BlindSegment, 512, None);
        // 512 remaining blocks / 32-block segments = 16 segments.
        assert_eq!(c.ra_capacity_blocks(), 16 * 32);
    }

    #[test]
    #[should_panic(expected = "continuation bitmap")]
    fn for_without_bitmap_panics() {
        let _ = DiskController::new(&cfg(), ReadAheadKind::For, 0, None);
    }

    #[test]
    #[should_panic(expected = "leaves no read-ahead cache")]
    fn oversized_hdc_panics() {
        let _ = DiskController::new(&cfg(), ReadAheadKind::BlindBlock, 1024, None);
    }
}
