//! HDC as an array-wide victim cache (§5's first example use).
//!
//! "For example, the host file system can use part of the disk
//! controller caches as an array-wide victim cache for its buffer
//! cache with this type of caching control."
//!
//! The host pins each *clean* block it evicts from the buffer cache
//! into the owning disk's HDC region (`pin_blk()`); a later
//! buffer-cache miss on that block is then a controller-cache hit
//! instead of a media operation, and the host unpins it on promotion.
//! Dirty evictions are written back (they must reach the media anyway).
//!
//! [`build_victim_workload`] derives, from an application-level access
//! stream, both the disk-level trace *and* the interleaved
//! pin/unpin command stream; [`crate::System`] applies the commands at
//! the matching points of the replay (`System::with_hdc_commands`).

use std::collections::{BTreeSet, HashMap, VecDeque};

use forhdc_host::pipeline::FileAccess;
use forhdc_layout::FileMap;
use forhdc_sim::{LogicalBlock, ReadWrite, StripingMap};
use forhdc_workload::{Trace, TraceRequest, Workload};

/// A host→controller HDC command, in logical (array) space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HdcCommand {
    /// `pin_blk()`: move the block into the controller's HDC region.
    Pin(LogicalBlock),
    /// `unpin_blk()`: release it.
    Unpin(LogicalBlock),
}

/// Bookkeeping from the victim-policy derivation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VictimBuildStats {
    /// Buffer-cache evictions seen.
    pub evictions: u64,
    /// Clean evictions pinned into HDC.
    pub pins: u64,
    /// Unpins (promotions + capacity management).
    pub unpins: u64,
    /// Dirty evictions emitted as write-back requests.
    pub writebacks: u64,
    /// Buffer-cache hit rate of the derivation.
    pub buffer_hit_rate: f64,
}

/// The derived replay: trace + command stream + stats.
#[derive(Debug)]
pub struct VictimWorkload {
    /// The disk-level workload to replay.
    pub workload: Workload,
    /// Commands to apply before issuing the request with the given
    /// issue index (`System::with_hdc_commands`).
    pub commands: HashMap<u64, Vec<HdcCommand>>,
    /// Derivation statistics.
    pub stats: VictimBuildStats,
}

/// Parameters of the victim derivation.
#[derive(Debug, Clone, Copy)]
pub struct VictimConfig {
    /// Host buffer cache capacity, blocks.
    pub buffer_blocks: u64,
    /// Per-disk HDC capacity, blocks (the host keeps its own count and
    /// unpins oldest-first before overflowing a region).
    pub hdc_blocks_per_disk: u32,
    /// The array's striping map (to find each block's disk).
    pub striping: StripingMap,
    /// Streams for the replay.
    pub streams: u32,
}

/// A small LRU with dirty bits and eviction visibility (the host
/// buffer cache of the victim derivation).
#[derive(Debug, Default)]
struct TrackingLru {
    map: HashMap<LogicalBlock, (u64, bool)>,
    order: BTreeSet<(u64, LogicalBlock)>,
    clock: u64,
}

impl TrackingLru {
    fn touch_or_insert(
        &mut self,
        block: LogicalBlock,
        dirty: bool,
    ) -> (bool, Option<(LogicalBlock, bool)>) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((old, d)) = self.map.get_mut(&block) {
            let old_stamp = *old;
            *old = stamp;
            *d = *d || dirty;
            self.order.remove(&(old_stamp, block));
            self.order.insert((stamp, block));
            return (true, None);
        }
        self.map.insert(block, (stamp, dirty));
        self.order.insert((stamp, block));
        (false, None)
    }

    fn evict_lru(&mut self) -> Option<(LogicalBlock, bool)> {
        let &(stamp, block) = self.order.iter().next()?;
        self.order.remove(&(stamp, block));
        let (_, dirty) = self.map.remove(&block).expect("in order set");
        Some((block, dirty))
    }

    fn len(&self) -> u64 {
        self.map.len() as u64
    }
}

/// Derives the victim-cache replay from an application access stream.
///
/// Every demand block goes through the tracked buffer cache; misses
/// become read requests, dirty evictions become write-back requests,
/// clean evictions become `Pin` commands (bounded per disk, oldest
/// pins released first), and promotions of pinned blocks emit `Unpin`.
///
/// # Panics
///
/// Panics if `buffer_blocks` is zero or `streams` is zero.
pub fn build_victim_workload(
    accesses: &[FileAccess],
    layout: &FileMap,
    cfg: VictimConfig,
) -> VictimWorkload {
    assert!(cfg.buffer_blocks > 0, "buffer cache must have capacity");
    assert!(cfg.streams > 0, "need at least one stream");
    let mut cache = TrackingLru::default();
    let mut stats = VictimBuildStats::default();
    let mut requests: Vec<TraceRequest> = Vec::new();
    let mut job_lens: Vec<u32> = Vec::new();
    let mut commands: HashMap<u64, Vec<HdcCommand>> = HashMap::new();
    // Host-side view of what is pinned where.
    let mut pinned: HashMap<LogicalBlock, ()> = HashMap::new();
    let mut pinned_fifo: Vec<VecDeque<LogicalBlock>> =
        vec![VecDeque::new(); cfg.striping.disks() as usize];
    let mut pending_cmds: Vec<HdcCommand> = Vec::new();
    let mut pending_after: Vec<HdcCommand> = Vec::new();
    let mut demand = 0u64;
    let mut hits = 0u64;

    for acc in accesses {
        let mut miss_run: Option<(LogicalBlock, u32)> = None;
        let mut job_requests = 0u32;
        // `pending_before` applies before the next request issues
        // (eviction pins); `pending_after` applies after it (promotion
        // unpins — the promoted block must still be pinned when its
        // read arrives).
        let flush_run = |run: &mut Option<(LogicalBlock, u32)>,
                         requests: &mut Vec<TraceRequest>,
                         job_requests: &mut u32,
                         commands: &mut HashMap<u64, Vec<HdcCommand>>,
                         pending_before: &mut Vec<HdcCommand>,
                         pending_after: &mut Vec<HdcCommand>,
                         kind: ReadWrite| {
            if let Some((start, n)) = run.take() {
                if !pending_before.is_empty() {
                    commands
                        .entry(requests.len() as u64)
                        .or_default()
                        .append(pending_before);
                }
                requests.push(TraceRequest {
                    start,
                    nblocks: n,
                    kind,
                });
                if !pending_after.is_empty() {
                    commands
                        .entry(requests.len() as u64)
                        .or_default()
                        .append(pending_after);
                }
                *job_requests += 1;
            }
        };
        for i in 0..acc.nblocks as u64 {
            let Some(block) = layout.block_at(acc.file, acc.offset + i) else {
                continue;
            };
            demand += 1;
            let dirty = acc.kind.is_write();
            let (hit, _) = cache.touch_or_insert(block, dirty);
            if hit {
                hits += 1;
                flush_run(
                    &mut miss_run,
                    &mut requests,
                    &mut job_requests,
                    &mut commands,
                    &mut pending_cmds,
                    &mut pending_after,
                    acc.kind,
                );
            } else {
                // Miss: extend or start the run of blocks to fetch.
                match miss_run {
                    Some((start, n)) if block == start.offset(n as u64) => {
                        miss_run = Some((start, n + 1));
                    }
                    _ => {
                        flush_run(
                            &mut miss_run,
                            &mut requests,
                            &mut job_requests,
                            &mut commands,
                            &mut pending_cmds,
                            &mut pending_after,
                            acc.kind,
                        );
                        miss_run = Some((block, 1));
                    }
                }
                // Promotion: a pinned block is being read back into the
                // buffer cache; release its victim slot afterwards.
                if pinned.remove(&block).is_some() {
                    let (disk, _) = cfg.striping.locate(block);
                    pinned_fifo[disk.as_usize()].retain(|&b| b != block);
                    pending_after.push(HdcCommand::Unpin(block));
                    stats.unpins += 1;
                }
            }
            // Capacity eviction from the host cache.
            while cache.len() > cfg.buffer_blocks {
                let Some((victim, victim_dirty)) = cache.evict_lru() else {
                    break;
                };
                stats.evictions += 1;
                if victim_dirty {
                    // Dirty data must reach the media: a write-back
                    // request of its own job.
                    if !pending_cmds.is_empty() {
                        commands
                            .entry(requests.len() as u64)
                            .or_default()
                            .append(&mut pending_cmds);
                    }
                    requests.push(TraceRequest {
                        start: victim,
                        nblocks: 1,
                        kind: ReadWrite::Write,
                    });
                    job_lens.push(1);
                    stats.writebacks += 1;
                } else if cfg.hdc_blocks_per_disk > 0 && !pinned.contains_key(&victim) {
                    // Clean eviction: pin into the victim cache,
                    // releasing the oldest pin if the region is full.
                    let (disk, _) = cfg.striping.locate(victim);
                    let fifo = &mut pinned_fifo[disk.as_usize()];
                    if fifo.len() as u32 >= cfg.hdc_blocks_per_disk {
                        if let Some(old) = fifo.pop_front() {
                            pinned.remove(&old);
                            pending_cmds.push(HdcCommand::Unpin(old));
                            stats.unpins += 1;
                        }
                    }
                    fifo.push_back(victim);
                    pinned.insert(victim, ());
                    pending_cmds.push(HdcCommand::Pin(victim));
                    stats.pins += 1;
                }
            }
        }
        flush_run(
            &mut miss_run,
            &mut requests,
            &mut job_requests,
            &mut commands,
            &mut pending_cmds,
            &mut pending_after,
            acc.kind,
        );
        if job_requests > 0 {
            job_lens.push(job_requests);
        }
    }
    stats.buffer_hit_rate = if demand == 0 {
        0.0
    } else {
        hits as f64 / demand as f64
    };
    VictimWorkload {
        workload: Workload {
            name: "victim-cache".into(),
            layout: layout.clone(),
            trace: Trace::with_jobs(requests, job_lens),
            streams: cfg.streams,
        },
        commands,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_layout::{FileId, LayoutBuilder};
    use forhdc_sim::{SimDuration, SimTime};

    fn read(seq: u64, file: u32, offset: u64, n: u32) -> FileAccess {
        FileAccess {
            at: SimTime::ZERO + SimDuration::from_micros(seq * 100),
            file: FileId::new(file),
            offset,
            nblocks: n,
            kind: ReadWrite::Read,
        }
    }

    fn write(seq: u64, file: u32, offset: u64, n: u32) -> FileAccess {
        FileAccess {
            kind: ReadWrite::Write,
            ..read(seq, file, offset, n)
        }
    }

    fn cfg(buffer: u64, hdc: u32) -> VictimConfig {
        VictimConfig {
            buffer_blocks: buffer,
            hdc_blocks_per_disk: hdc,
            striping: StripingMap::new(4, 8),
            streams: 8,
        }
    }

    #[test]
    fn clean_evictions_become_pins() {
        let layout = LayoutBuilder::new().build(&[4; 10]);
        // Cache of 4 blocks: reading 3 files evicts the first.
        let accesses = vec![read(0, 0, 0, 4), read(1, 1, 0, 4), read(2, 2, 0, 4)];
        let out = build_victim_workload(&accesses, &layout, cfg(4, 64));
        assert!(out.stats.evictions >= 8);
        assert_eq!(out.stats.pins, out.stats.evictions); // all clean
        assert_eq!(out.stats.writebacks, 0);
        let total_cmds: usize = out.commands.values().map(Vec::len).sum();
        assert_eq!(total_cmds as u64, out.stats.pins + out.stats.unpins);
    }

    #[test]
    fn dirty_evictions_become_writebacks() {
        let layout = LayoutBuilder::new().build(&[4; 10]);
        let accesses = vec![write(0, 0, 0, 4), read(1, 1, 0, 4), read(2, 2, 0, 4)];
        let out = build_victim_workload(&accesses, &layout, cfg(4, 64));
        assert!(out.stats.writebacks >= 4, "{:?}", out.stats);
        let writes = out
            .workload
            .trace
            .requests()
            .iter()
            .filter(|r| r.kind.is_write())
            .count();
        assert!(writes >= 4);
    }

    #[test]
    fn promotion_unpins() {
        let layout = LayoutBuilder::new().build(&[4; 10]);
        // Read file 0, evict it (files 1,2), read file 0 again: its
        // blocks were pinned, the re-read promotes and unpins them.
        let accesses = vec![
            read(0, 0, 0, 4),
            read(1, 1, 0, 4),
            read(2, 2, 0, 4),
            read(3, 0, 0, 4),
        ];
        let out = build_victim_workload(&accesses, &layout, cfg(4, 64));
        assert!(out.stats.unpins >= 4, "{:?}", out.stats);
    }

    #[test]
    fn pin_budget_respected_per_disk() {
        let layout = LayoutBuilder::new().build(&[1; 400]);
        let accesses: Vec<FileAccess> = (0..400).map(|i| read(i, i as u32, 0, 1)).collect();
        let out = build_victim_workload(&accesses, &layout, cfg(8, 4));
        // Net pinned per disk never exceeds 4: pins - unpins <= 4 disks * 4.
        assert!(out.stats.pins - out.stats.unpins <= 16, "{:?}", out.stats);
    }

    #[test]
    fn hits_produce_no_requests() {
        let layout = LayoutBuilder::new().build(&[4; 4]);
        let accesses = vec![read(0, 0, 0, 4), read(1, 0, 0, 4)];
        let out = build_victim_workload(&accesses, &layout, cfg(64, 16));
        assert_eq!(out.workload.trace.total_blocks(), 4); // second read all hits
        assert!((out.stats.buffer_hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stream() {
        let layout = LayoutBuilder::new().build(&[4; 2]);
        let out = build_victim_workload(&[], &layout, cfg(8, 8));
        assert!(out.workload.trace.is_empty());
        assert_eq!(out.stats, VictimBuildStats::default());
    }
}
