//! The read-ahead disciplines compared in the paper's evaluation.

use std::fmt;

/// Which read-ahead technique (and cache organization) a controller
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadAheadKind {
    /// The conventional drive: blind read-ahead filling a segment of
    /// the segment-organized cache (`Segm` in the figures).
    #[default]
    BlindSegment,
    /// Blind read-ahead over the block-organized cache (`Block`).
    BlindBlock,
    /// Read-ahead disabled, block-organized cache (`No-RA`).
    None,
    /// File-Oriented Read-ahead: bitmap-bounded read-ahead over the
    /// block-organized cache with MRU replacement (`FOR`).
    For,
    /// Partial-track buffering (Shriver 97, cited in §2.1): blind
    /// read-ahead that stops at the end of the current physical track,
    /// over the block-organized cache. A classic controller policy
    /// included as an extra baseline.
    PartialTrack,
}

impl ReadAheadKind {
    /// The figure label the paper uses.
    pub fn label(self) -> &'static str {
        match self {
            ReadAheadKind::BlindSegment => "Segm",
            ReadAheadKind::BlindBlock => "Block",
            ReadAheadKind::None => "No-RA",
            ReadAheadKind::For => "FOR",
            ReadAheadKind::PartialTrack => "Track",
        }
    }

    /// Whether this discipline uses the block-based cache organization.
    pub fn uses_block_cache(self) -> bool {
        !matches!(self, ReadAheadKind::BlindSegment)
    }

    /// Whether this discipline needs the FOR continuation bitmap.
    pub fn needs_bitmap(self) -> bool {
        matches!(self, ReadAheadKind::For)
    }
}

impl fmt::Display for ReadAheadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figures() {
        assert_eq!(ReadAheadKind::BlindSegment.to_string(), "Segm");
        assert_eq!(ReadAheadKind::BlindBlock.to_string(), "Block");
        assert_eq!(ReadAheadKind::None.to_string(), "No-RA");
        assert_eq!(ReadAheadKind::For.to_string(), "FOR");
        assert_eq!(ReadAheadKind::PartialTrack.to_string(), "Track");
        assert!(ReadAheadKind::PartialTrack.uses_block_cache());
        assert!(!ReadAheadKind::PartialTrack.needs_bitmap());
    }

    #[test]
    fn organization_flags() {
        assert!(!ReadAheadKind::BlindSegment.uses_block_cache());
        assert!(ReadAheadKind::BlindBlock.uses_block_cache());
        assert!(ReadAheadKind::None.uses_block_cache());
        assert!(ReadAheadKind::For.uses_block_cache());
        assert!(ReadAheadKind::For.needs_bitmap());
        assert!(!ReadAheadKind::BlindBlock.needs_bitmap());
    }
}
