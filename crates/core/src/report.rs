//! Measurement report of one full-system run.

use std::fmt;

use forhdc_cache::{CacheStats, HdcStats};
use forhdc_fault::FaultStats;
use forhdc_sim::{DiskStats, SimDuration};

use crate::latency::LatencyHistogram;
use crate::policy::ReadAheadKind;

/// Everything a figure needs from one simulation run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workload label.
    pub workload: String,
    /// Read-ahead discipline that ran.
    pub policy: ReadAheadKind,
    /// HDC memory per disk, bytes (0 = HDC off).
    pub hdc_bytes_per_disk: u64,
    /// Total I/O time: completion instant of the last request (the
    /// quantity plotted in Figures 3–12).
    pub io_time: SimDuration,
    /// Host requests completed.
    pub requests: u64,
    /// Payload bytes the host demanded (excludes read-ahead).
    pub payload_bytes: u64,
    /// Merged read-ahead-cache statistics.
    pub cache: CacheStats,
    /// Merged HDC statistics.
    pub hdc: HdcStats,
    /// Merged mechanical statistics.
    pub disk: DiskStats,
    /// Per-disk busy times (load-balance diagnostics).
    pub per_disk_busy: Vec<SimDuration>,
    /// Time the shared bus was held.
    pub bus_busy: SimDuration,
    /// Time transfers waited for the bus.
    pub bus_wait: SimDuration,
    /// Mean host-request response time.
    pub mean_response: SimDuration,
    /// Worst host-request response time.
    pub max_response: SimDuration,
    /// Full response-time distribution (log-bucketed, ~4 % resolution).
    pub latency: LatencyHistogram,
    /// Read extents served by the cooperative pin set (0 unless
    /// cooperative HDC was enabled).
    pub coop_hits: u64,
    /// Total FOR bitmap bits scanned (0 for non-FOR runs).
    pub bitmap_scans: u64,
    /// Degraded-mode tallies (all zero for a fault-free run).
    pub faults: FaultStats,
    /// Clean→dirty HDC transitions over the run (conservation
    /// accounting: `hdc_dirtied == hdc.flushed +
    /// faults.lost_dirty_blocks + hdc_dirty_unpins`).
    pub hdc_dirtied: u64,
    /// Dirty HDC blocks handed back to the host by unpins.
    pub hdc_dirty_unpins: u64,
    /// Mirrored read extents routed to a member (0 unless mirrored).
    /// Conservation: `mirror_reads == mirror_policy_reads +
    /// faults.failover_reads`.
    pub mirror_reads: u64,
    /// The subset of `mirror_reads` routed by the configured
    /// read-split policy (the rest were offline failovers).
    pub mirror_policy_reads: u64,
}

impl Report {
    /// Payload throughput in MB/s (0 when no time elapsed). This is the
    /// "disk throughput" of the paper's title: since the servers are
    /// I/O-bound and the log is replayed flat-out, throughput is
    /// inversely proportional to I/O time.
    pub fn throughput_mbps(&self) -> f64 {
        if self.io_time == SimDuration::ZERO {
            return 0.0;
        }
        self.payload_bytes as f64 / 1e6 / self.io_time.as_secs_f64()
    }

    /// Completed requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.io_time == SimDuration::ZERO {
            return 0.0;
        }
        self.requests as f64 / self.io_time.as_secs_f64()
    }

    /// This run's I/O time normalized to `base` (the paper's Y axis in
    /// Figures 3–6).
    ///
    /// # Panics
    ///
    /// Panics if `base` took zero time.
    pub fn normalized_io_time(&self, base: &Report) -> f64 {
        assert!(
            base.io_time > SimDuration::ZERO,
            "cannot normalize to a zero-time run"
        );
        self.io_time.as_nanos() as f64 / base.io_time.as_nanos() as f64
    }

    /// Throughput improvement over `base` (`base.io_time / io_time − 1`;
    /// Table 2 reports these percentages).
    pub fn improvement_over(&self, base: &Report) -> f64 {
        base.io_time.as_nanos() as f64 / self.io_time.as_nanos() as f64 - 1.0
    }

    /// Mean disk utilization over the run, in `[0, 1]`.
    pub fn mean_disk_utilization(&self) -> f64 {
        if self.io_time == SimDuration::ZERO || self.per_disk_busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .per_disk_busy
            .iter()
            .map(|b| b.as_nanos() as f64 / self.io_time.as_nanos() as f64)
            .sum();
        (total / self.per_disk_busy.len() as f64).min(1.0)
    }

    /// Load imbalance: max over mean per-disk busy time (1.0 = perfect).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_disk_busy.is_empty() {
            return 1.0;
        }
        let max = self
            .per_disk_busy
            .iter()
            .map(|b| b.as_nanos())
            .max()
            .unwrap_or(0) as f64;
        let mean = self.per_disk_busy.iter().map(|b| b.as_nanos()).sum::<u64>() as f64
            / self.per_disk_busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// HDC hit rate as the paper reports it (reads + writes).
    pub fn hdc_hit_rate(&self) -> f64 {
        self.hdc.hit_rate()
    }

    /// Label of the configuration, e.g. `FOR+HDC`.
    pub fn label(&self) -> String {
        if self.hdc_bytes_per_disk > 0 {
            format!("{}+HDC", self.policy)
        } else {
            self.policy.to_string()
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} requests on {}",
            self.label(),
            self.requests,
            self.workload
        )?;
        writeln!(
            f,
            "  io_time {}  throughput {:.2} MB/s  {:.0} req/s",
            self.io_time,
            self.throughput_mbps(),
            self.requests_per_sec()
        )?;
        writeln!(
            f,
            "  cache: {}  util {:.1}%  imbalance {:.2}",
            self.cache,
            100.0 * self.mean_disk_utilization(),
            self.load_imbalance()
        )?;
        if self.hdc_bytes_per_disk > 0 {
            writeln!(f, "  {}", self.hdc)?;
        }
        writeln!(f, "  latency: {}", self.latency)?;
        if !self.faults.is_trivial() {
            writeln!(f, "  degraded: {}", self.faults)?;
        }
        write!(
            f,
            "  media: {} ops, {} blocks read ({} RA), {} written",
            self.disk.media_ops,
            self.disk.blocks_read,
            self.disk.read_ahead_blocks,
            self.disk.blocks_written
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(io_ms: u64) -> Report {
        Report {
            workload: "test".into(),
            policy: ReadAheadKind::For,
            hdc_bytes_per_disk: 0,
            io_time: SimDuration::from_millis(io_ms),
            requests: 100,
            payload_bytes: 1_000_000,
            cache: CacheStats::default(),
            hdc: HdcStats::default(),
            disk: DiskStats::default(),
            per_disk_busy: vec![SimDuration::from_millis(io_ms / 2); 4],
            bus_busy: SimDuration::ZERO,
            bus_wait: SimDuration::ZERO,
            mean_response: SimDuration::from_millis(1),
            max_response: SimDuration::from_millis(2),
            latency: LatencyHistogram::new(),
            coop_hits: 0,
            bitmap_scans: 0,
            faults: FaultStats::default(),
            hdc_dirtied: 0,
            hdc_dirty_unpins: 0,
            mirror_reads: 0,
            mirror_policy_reads: 0,
        }
    }

    #[test]
    fn throughput_and_rates() {
        let r = report(1000);
        assert!((r.throughput_mbps() - 1.0).abs() < 1e-9);
        assert!((r.requests_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_and_improvement() {
        let base = report(1000);
        let faster = report(600);
        assert!((faster.normalized_io_time(&base) - 0.6).abs() < 1e-9);
        assert!((faster.improvement_over(&base) - 2.0 / 3.0).abs() < 1e-9);
        assert!((base.normalized_io_time(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_imbalance() {
        let r = report(1000);
        assert!((r.mean_disk_utilization() - 0.5).abs() < 1e-9);
        assert!((r.load_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        let mut r = report(1);
        assert_eq!(r.label(), "FOR");
        r.hdc_bytes_per_disk = 2 * 1024 * 1024;
        assert_eq!(r.label(), "FOR+HDC");
    }

    #[test]
    fn zero_time_degenerates_gracefully() {
        let r = report(0);
        assert_eq!(r.throughput_mbps(), 0.0);
        assert_eq!(r.requests_per_sec(), 0.0);
        assert_eq!(r.mean_disk_utilization(), 0.0);
    }

    #[test]
    fn display_contains_label() {
        assert!(report(5).to_string().contains("[FOR]"));
    }

    #[test]
    fn degraded_section_only_under_faults() {
        let mut r = report(5);
        assert!(!r.to_string().contains("degraded:"));
        r.faults.media_read_errors = 2;
        r.faults.retries = 6;
        let s = r.to_string();
        assert!(s.contains("degraded:"));
        assert!(s.contains("media errors 2r/0w"));
    }
}
