//! Response-time distribution tracking.
//!
//! The paper reports aggregate I/O time; a storage engineer also wants
//! the tail. [`LatencyHistogram`] is a compact log-bucketed histogram
//! (no allocation per sample) recording every host request's response
//! time; the [`crate::Report`] carries one and exposes percentiles.

use std::fmt;

use forhdc_sim::SimDuration;

/// Log-bucketed latency histogram: 1-µs resolution at the bottom,
/// ~4 % relative resolution throughout (16 sub-buckets per octave).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Bucket `i` counts samples with `index(sample) == i`.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

const SUB_BUCKETS: u64 = 16;
const BASE_NS: u64 = 1_000; // 1 µs floor

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Vec::new(),
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn index(ns: u64) -> usize {
        if ns < BASE_NS {
            return 0;
        }
        let octave = (ns / BASE_NS).ilog2() as u64;
        let lower = BASE_NS << octave;
        let sub = (ns - lower) * SUB_BUCKETS / lower;
        (octave * SUB_BUCKETS + sub) as usize + 1
    }

    /// Lower bound of bucket `i` in nanoseconds.
    fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            return 0;
        }
        let i = i as u64 - 1;
        let octave = i / SUB_BUCKETS;
        let sub = i % SUB_BUCKETS;
        let lower = BASE_NS << octave;
        lower + lower * sub / SUB_BUCKETS
    }

    /// Records one response time.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = Self::index(ns);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean response time ([`SimDuration::ZERO`] when empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket lower bound —
    /// accurate to the histogram's ~4 % resolution. Returns
    /// [`SimDuration::ZERO`] when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_nanos(Self::bucket_floor(i));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {} / p95 {} / p99 {} / max {} over {} samples",
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_dominates_all_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(ms(5));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).as_millis_f64();
            assert!((v - 5.0).abs() / 5.0 < 0.07, "q={q}: {v}");
        }
        assert_eq!(h.mean(), ms(5));
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1_000u64 {
            h.record(SimDuration::from_micros(i * 10)); // 10 µs .. 10 ms
        }
        let p50 = h.quantile(0.5).as_millis_f64();
        assert!((p50 - 5.0).abs() < 0.5, "p50 {p50}");
        let p95 = h.quantile(0.95).as_millis_f64();
        assert!((p95 - 9.5).abs() < 0.6, "p95 {p95}");
        assert!(h.quantile(0.99) <= h.max());
        assert!((h.mean().as_millis_f64() - 5.0).abs() < 0.1);
    }

    #[test]
    fn resolution_is_about_four_percent() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(1_234));
        let v = h.quantile(1.0).as_nanos() as f64;
        let err = (v - 1_234_000.0).abs() / 1_234_000.0;
        assert!(err < 0.07, "resolution error {err}");
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencyHistogram::new();
        a.record(ms(1));
        let mut b = LatencyHistogram::new();
        b.record(ms(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(0.25).as_millis_f64() < 2.0);
        assert!(a.quantile(1.0).as_millis_f64() > 90.0);
    }

    #[test]
    fn sub_microsecond_lands_in_bucket_zero() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(10));
        assert_eq!(h.quantile(1.0), SimDuration::ZERO); // floor of bucket 0
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }
}
