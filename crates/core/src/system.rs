//! The full-system simulation: disk array + controllers + bus + host
//! streams, driven by a deterministic event loop.
//!
//! This is the experiment vehicle of §6: a workload's disk-level trace
//! is replayed closed-loop by `S` streams over the 8-disk Ultra160
//! array, and the total I/O time (completion of the last request) is
//! the figure of merit. "Contention for buses, memories, and other
//! components is simulated in detail. For request scheduling, each disk
//! controller has a queue that implements the LOOK algorithm. Before
//! queuing a new request, the disk controller checks the cache."

use std::collections::HashMap;

use forhdc_cache::fx::{fx_map_with_capacity, FxHashMap};
use forhdc_cache::{BlockReplacement, SegmentReplacement};
use forhdc_check::{Auditor, FinalDigest, FullAudit, NoChecks};
use forhdc_fault::{FaultModel, FaultStats, NoFaults};
use forhdc_host::StreamDriver;
use forhdc_layout::build_disk_bitmaps;
use forhdc_sim::sched::{QueuedOp, Scheduler};
use forhdc_sim::{
    ArrayConfig, BusModel, DiskId, DiskMechanics, DiskStats, LaneCalendar, ReadSplit, ReadWrite,
    SchedulerKind, SimDuration, SimTime, StreamId, StripingMap,
};
use forhdc_trace::{FaultKind, NullTracer, ProbeResult, TraceEvent, Tracer};
use forhdc_workload::{TraceRequest, Workload};

use crate::controller::{ControllerDecision, DiskController};
use crate::planner::{plan_cooperative, plan_top_misses, CoopPlan, HdcPlan};
use crate::policy::ReadAheadKind;
use crate::report::Report;
use crate::victim::HdcCommand;

/// How the array reacts to injected faults: bounded retries with
/// exponential backoff in simulated time, plus an optional per-request
/// timeout. Only consulted when the attached [`FaultModel`] is
/// enabled, so the fault-free path never reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries allowed per operation before it completes with an
    /// error (media) or the transfer is abandoned (bus).
    pub max_retries: u32,
    /// First-retry backoff; attempt `n` waits `base << n`.
    pub backoff_base: SimDuration,
    /// Host requests still pending after this long complete with an
    /// error (`None` = never time out).
    pub request_timeout: Option<SimDuration>,
}

impl RecoveryPolicy {
    /// Backoff before retrying after `attempt` failed tries
    /// (exponential, clamped so the shift cannot overflow).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        self.backoff_base * (1u64 << attempt.min(20))
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base: SimDuration::from_millis(1),
            request_timeout: None,
        }
    }
}

/// A mirror reconstruction running alongside the workload: starting at
/// `start`, the target member is rebuilt from its twin, one paced chunk
/// at a time. Each chunk is one real media read on the source and one
/// real media write on the target, so the copy competes with foreground
/// traffic for heads and queues (the pair's private copy path skips the
/// shared host bus). Requires a mirrored array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildConfig {
    /// Physical member being reconstructed (its twin is the source).
    pub disk: u16,
    /// Simulated time at which the copy starts (e.g. the end of the
    /// offline window that replaced the disk).
    pub start: SimDuration,
    /// Pacing cap in bytes of reconstructed data per second of
    /// simulated time (`0` = unpaced: the next chunk starts as soon as
    /// the previous one lands).
    pub rate_bytes_per_sec: u64,
    /// Blocks copied per chunk (one source read + one target write).
    pub chunk_blocks: u32,
    /// Blocks to reconstruct — the used extent of the member, starting
    /// at physical block 0.
    pub total_blocks: u64,
}

/// Configuration of one experimental system (one curve point).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The array hardware (Table 1 defaults).
    pub array: ArrayConfig,
    /// Read-ahead discipline.
    pub read_ahead: ReadAheadKind,
    /// Host-guided cache per disk, in bytes (0 = HDC off).
    pub hdc_bytes_per_disk: u64,
    /// Block-cache replacement (MRU per §4; LRU for ablation).
    pub block_replacement: BlockReplacement,
    /// Segment-cache replacement (LRU conventional; others for
    /// ablation).
    pub segment_replacement: SegmentReplacement,
    /// Cooperative HDC (§5's future-work remark): the pinned set is
    /// planned *globally*; blocks whose home controller is full
    /// overflow into sibling controllers and are served over the bus
    /// like any other controller-cache hit. Only meaningful with
    /// `hdc_bytes_per_disk > 0`.
    pub cooperative_hdc: bool,
    /// Periodic `flush_hdc()` interval. `None` reproduces the paper's
    /// default (dirty HDC blocks written only at the end of the run);
    /// `Some(30 s)` models the Unix sync policy whose throughput cost
    /// the paper measured at under 1 %. Flush write-backs are charged
    /// as real media operations.
    pub hdc_flush_period: Option<SimDuration>,
    /// Fixed simulated-time cadence for the tracing sampler (queue
    /// depth, utilization, cache occupancy, RA accuracy per disk).
    /// Only consulted when the attached tracer is enabled; sampling
    /// never perturbs the simulation itself.
    pub trace_sample_period: Option<SimDuration>,
    /// Fault recovery policy (retries, backoff, timeout). Inert unless
    /// a fault model is attached.
    pub recovery: RecoveryPolicy,
    /// Optional mirror reconstruction running as background media
    /// traffic (requires a mirrored array).
    pub rebuild: Option<RebuildConfig>,
}

impl SystemConfig {
    fn with_policy(read_ahead: ReadAheadKind) -> Self {
        SystemConfig {
            array: ArrayConfig::default(),
            read_ahead,
            hdc_bytes_per_disk: 0,
            block_replacement: BlockReplacement::Mru,
            segment_replacement: SegmentReplacement::Lru,
            cooperative_hdc: false,
            hdc_flush_period: None,
            trace_sample_period: None,
            recovery: RecoveryPolicy::default(),
            rebuild: None,
        }
    }

    /// The conventional drive: segment cache + blind read-ahead
    /// (`Segm`).
    pub fn segm() -> Self {
        SystemConfig::with_policy(ReadAheadKind::BlindSegment)
    }

    /// Blind read-ahead over the block-organized cache (`Block`).
    pub fn block() -> Self {
        SystemConfig::with_policy(ReadAheadKind::BlindBlock)
    }

    /// Read-ahead disabled (`No-RA`).
    pub fn no_ra() -> Self {
        SystemConfig::with_policy(ReadAheadKind::None)
    }

    /// File-Oriented Read-ahead (`FOR`).
    pub fn for_() -> Self {
        SystemConfig::with_policy(ReadAheadKind::For)
    }

    /// Partial-track read-ahead (`Track`, Shriver 97 — an extra
    /// baseline beyond the paper's four systems).
    pub fn partial_track() -> Self {
        SystemConfig::with_policy(ReadAheadKind::PartialTrack)
    }

    /// Dedicates `bytes` of each controller cache to HDC.
    pub fn with_hdc(mut self, bytes: u64) -> Self {
        self.hdc_bytes_per_disk = bytes;
        self
    }

    /// Sets the striping unit in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the unit is zero or misaligned (see
    /// [`ArrayConfig::with_striping_unit_bytes`]).
    pub fn with_striping_unit(mut self, bytes: u32) -> Self {
        self.array = self.array.with_striping_unit_bytes(bytes);
        self
    }

    /// Sets the per-disk scheduler (ablation).
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.array.scheduler = kind;
        self
    }

    /// Sets the segment size (and Table 1 segment count).
    pub fn with_segment_bytes(mut self, bytes: u32) -> Self {
        self.array.disk = self.array.disk.with_segment_bytes(bytes);
        self
    }

    /// Sets the cache replacement policies (ablation).
    pub fn with_replacement(
        mut self,
        block: BlockReplacement,
        segment: SegmentReplacement,
    ) -> Self {
        self.block_replacement = block;
        self.segment_replacement = segment;
        self
    }

    /// Enables the Ultrastar-like zoned-recording profile (outer
    /// cylinders transfer faster; Table 1's 54 MB/s stays the average).
    pub fn with_zoned_recording(mut self) -> Self {
        self.array.disk = self.array.disk.with_zoned_recording();
        self
    }

    /// Enables RAID-1 mirroring over adjacent disk pairs (§2.2:
    /// redundancy for reliable servers). Reads go to the closest copy;
    /// writes to both members.
    pub fn with_mirroring(mut self) -> Self {
        self.array.mirrored = true;
        self
    }

    /// Sets the read-splitting policy for mirrored pairs (which member
    /// serves each read). Only meaningful with mirroring enabled.
    pub fn with_read_split(mut self, policy: ReadSplit) -> Self {
        self.array.read_split = policy;
        self
    }

    /// Attaches a mirror rebuild: starting at `rebuild.start`, the
    /// target member is reconstructed from its twin as paced background
    /// media traffic competing with the foreground workload.
    pub fn with_rebuild(mut self, rebuild: RebuildConfig) -> Self {
        self.rebuild = Some(rebuild);
        self
    }

    /// Enables cooperative HDC planning (global top-K with overflow
    /// into sibling controllers).
    pub fn with_cooperative_hdc(mut self) -> Self {
        self.cooperative_hdc = true;
        self
    }

    /// Enables periodic HDC flushing every `period` (e.g. the Unix
    /// 30-second sync).
    pub fn with_hdc_flush_period(mut self, period: SimDuration) -> Self {
        self.hdc_flush_period = Some(period);
        self
    }

    /// Sets the tracing sampler cadence (simulated time between
    /// per-disk [`forhdc_trace::TraceEvent::Sample`] observations).
    pub fn with_trace_sampling(mut self, period: SimDuration) -> Self {
        self.trace_sample_period = Some(period);
        self
    }

    /// Sets the fault recovery policy (retries/backoff/timeout).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// HDC capacity per disk in blocks.
    pub fn hdc_blocks(&self) -> u32 {
        (self.hdc_bytes_per_disk / self.array.disk.block_bytes() as u64) as u32
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::segm()
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    MediaDone {
        disk: DiskId,
    },
    SubDone {
        req: u64,
    },
    HdcFlush,
    /// Tracing sampler tick. Reads state and emits [`TraceEvent`]s
    /// only; it never mutates the simulation, so traced and untraced
    /// runs produce identical reports.
    Sample,
    /// Requeue a media op after its backoff expires (fault path only).
    RetryMedia {
        disk: DiskId,
        op: QueuedOp,
    },
    /// Re-attempt a bus transfer after its backoff expires (fault path
    /// only).
    RetryBus {
        req: u64,
        disk: u16,
        bytes: u64,
        attempt: u32,
    },
    /// An offline window covering this disk has ended; resume service
    /// (fault path only).
    DiskOnline {
        disk: DiskId,
    },
    /// Controller power loss: volatile dirty HDC contents are discarded
    /// array-wide (fault path only).
    PowerLoss,
    /// Per-request deadline expired (fault path only).
    Timeout {
        req: u64,
    },
    /// Issue the next paced chunk of a mirror rebuild (rebuild runs
    /// only).
    RebuildTick,
}

/// Tokens at or above this mark internal flush write-backs: they carry
/// no host request, so no bus transfer or completion is due.
const FLUSH_TOKEN_BASE: u64 = 1 << 63;

/// Tokens in `REBUILD_TOKEN_BASE..FLUSH_TOKEN_BASE` mark mirror-rebuild
/// copy legs: real media work on a pair's members, moved over the
/// pair's private copy path — no shared-bus transfer, no host
/// completion.
const REBUILD_TOKEN_BASE: u64 = 1 << 62;

/// Host-stream lane offsets into the event calendar, past the
/// per-disk media lanes (`0..disks`). Each names a stream whose
/// firing times are naturally non-decreasing, so the calendar serves
/// it from an O(1) FIFO; anything else (fault retries, recovery
/// wake-ups) takes the calendar's fallback heap. The assignment is a
/// pure fast path — pop order is `(time, seq)` regardless (see
/// `forhdc_sim::calendar`).
const LANE_SUB: usize = 0;
const LANE_FLUSH: usize = 1;
const LANE_SAMPLE: usize = 2;
const LANE_POWER: usize = 3;
const LANE_TIMEOUT: usize = 4;
const LANE_REBUILD: usize = 5;
const HOST_LANES: usize = 6;

#[derive(Debug)]
struct CurrentOp {
    token: u64,
    kind: ReadWrite,
    start: forhdc_sim::PhysBlock,
    total: u32,
    requested: u32,
    timing: forhdc_sim::ServiceTiming,
    /// Which service attempt this is (0 = first try); carried so a
    /// media error can decide between retry and giving up.
    attempt: u32,
}

struct DiskState {
    mech: DiskMechanics,
    sched: Scheduler,
    ctl: DiskController,
    stats: DiskStats,
    busy: bool,
    current: Option<CurrentOp>,
    /// Busy time accumulated over completed operations. Unlike
    /// `stats.busy_time` (credited in one lump at completion) this is
    /// interval-exact, so a sampler window's busy delta never exceeds
    /// the window.
    busy_accum: SimDuration,
    /// When the in-flight operation started service (valid while
    /// `busy`).
    busy_since: SimTime,
    /// Busy total as of the last sampler observation.
    busy_sampled: SimDuration,
    /// Whether a [`Event::DiskOnline`] wake-up is already queued for an
    /// offline window covering this disk (prevents duplicate wakes).
    wake_scheduled: bool,
}

impl std::fmt::Debug for DiskState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskState")
            .field("busy", &self.busy)
            .field("queued", &self.sched.len())
            .finish()
    }
}

/// Disk-local outcome of starting the next queued op (the part of
/// `start_next` that touches only [`DiskState`]).
struct ServiceStart {
    /// When the media operation completes.
    done: SimTime,
    /// Queueing delay of the op that just started (for the trace).
    wait: SimDuration,
    /// Bitmap-scan cost charged on top of the mechanical time (for the
    /// trace's overhead slot).
    extra: SimDuration,
}

/// What one media completion asks the host to do: the only effects of
/// a fault-free [`advance_media`] that escape the disk. The host
/// commits these in global event order, which is what makes the
/// sharded engine's output byte-identical to the serial engine's.
struct MediaStep {
    /// `(token, payload bytes)` of a host request whose demanded blocks
    /// must now cross the bus. `None` for flush write-backs.
    bus: Option<(u64, u64)>,
    /// Completion time of the next op the disk just started, if its
    /// queue was non-empty.
    next: Option<SimTime>,
}

/// Retires a completed media op on its disk: records the service in
/// the disk stats and installs the transferred run in the controller
/// cache. Shared verbatim by the serial and sharded completion paths.
#[inline]
fn retire_op(d: &mut DiskState, op: &CurrentOp) {
    let ra = op.total - op.requested;
    match op.kind {
        ReadWrite::Read => d.stats.record_op(&op.timing, op.total as u64, 0, ra as u64),
        ReadWrite::Write => d.stats.record_op(&op.timing, 0, op.total as u64, 0),
    }
    d.ctl
        .on_media_complete(op.kind, op.start, op.total, op.requested);
}

/// Pops and services the next queued op on `d` — the disk-local half
/// of `start_next`. Marks the disk busy, installs the new current op,
/// and reports when its media phase completes; `None` when the queue
/// is empty.
#[inline]
fn service_next(
    d: &mut DiskState,
    now: SimTime,
    scan_cost: SimDuration,
    is_for: bool,
) -> Option<ServiceStart> {
    debug_assert!(!d.busy);
    let op = d.sched.pop_next(d.mech.head_cylinder())?;
    d.stats.note_queue_depth(d.sched.len(), now);
    let timing = d.mech.service(op.kind, op.start, op.nblocks, now);
    // Charge the FOR bitmap scan: one bit per block examined.
    let extra = if is_for && op.kind.is_read() {
        scan_cost * (op.nblocks as u64 + 1)
    } else {
        SimDuration::ZERO
    };
    let wait = now.since(op.queued_at);
    d.busy = true;
    d.busy_since = now;
    d.current = Some(CurrentOp {
        token: op.token,
        kind: op.kind,
        start: op.start,
        total: op.nblocks,
        requested: op.requested,
        timing,
        attempt: op.attempt,
    });
    Some(ServiceStart {
        done: now + timing.total() + extra,
        wait,
        extra,
    })
}

/// One fault-free media completion, disk-local part only: retire the
/// finished op and start the next one. Safe to run concurrently for
/// distinct disks — it touches nothing but `d`. The returned
/// [`MediaStep`] carries the host-side effects for ordered commit.
fn advance_media(
    d: &mut DiskState,
    now: SimTime,
    scan_cost: SimDuration,
    is_for: bool,
    block_bytes: u64,
) -> MediaStep {
    let op = d.current.take().expect("media completion without an op");
    d.busy = false;
    d.busy_accum += now.since(d.busy_since);
    retire_op(d, &op);
    // Only the demanded payload of a host request crosses the bus;
    // read-ahead stays in the controller cache, flush write-backs move
    // cache -> media only, and rebuild legs use the pair's copy path
    // (rebuild disables the windowed engine anyway, so the guard is
    // belt-and-braces here).
    let bus =
        (op.token < REBUILD_TOKEN_BASE).then(|| (op.token, op.requested as u64 * block_bytes));
    let next = service_next(d, now, scan_cost, is_for).map(|s| s.done);
    MediaStep { bus, next }
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    stream: StreamId,
    remaining: u32,
    issued_at: SimTime,
    /// Set when any sub-operation exhausted its retries (or the request
    /// timed out): the request still completes, as an error.
    failed: bool,
}

/// A fully assembled system ready to replay one workload.
///
/// The tracer type parameter defaults to [`NullTracer`], whose
/// constant-false `enabled()` lets every emission site compile to
/// nothing — untraced runs pay zero overhead. Attach a real tracer
/// with [`System::new_traced`] and recover it (full of events) from
/// [`System::run_traced`].
///
/// The fault-model parameter works the same way: it defaults to
/// [`NoFaults`], whose constant-false `enabled()` compiles every fault
/// site out of the hot path, so the default build is byte-identical to
/// the pre-fault simulator. Attach a real model (e.g.
/// `forhdc_fault::SeededFaults`) with [`System::new_faulted`] or
/// [`System::new_traced_faulted`] to inject deterministic media, bus,
/// offline-window, and power-loss faults.
///
/// The auditor parameter is the third instance of the pattern: it
/// defaults to [`NoChecks`] (audit sites compile away; unchecked
/// reports stay byte-identical). Attach [`FullAudit`] with
/// [`System::new_checked`] (or the fully general
/// [`System::new_traced_faulted_audited`]) to validate invariants at
/// every audit point and panic on the first violation (checked mode,
/// DESIGN.md §6.5).
///
/// # Example
///
/// ```
/// use forhdc_core::{System, SystemConfig};
/// use forhdc_workload::SyntheticWorkload;
///
/// let wl = SyntheticWorkload::builder().requests(100).files(1_000).seed(3).build();
/// let report = System::new(SystemConfig::for_().with_hdc(2 * 1024 * 1024), &wl).run();
/// assert_eq!(report.requests, wl.trace.len() as u64);
/// ```
#[derive(Debug)]
pub struct System<T: Tracer = NullTracer, F: FaultModel = NoFaults, A: Auditor = NoChecks> {
    tracer: T,
    faults: F,
    auditor: A,
    fstats: FaultStats,
    cfg: SystemConfig,
    striping: StripingMap,
    disks: Vec<DiskState>,
    bus: BusModel,
    queue: LaneCalendar<Event>,
    driver: StreamDriver,
    pending: FxHashMap<u64, PendingReq>,
    next_req: u64,
    workload_name: String,
    payload_bytes: u64,
    response_sum: SimDuration,
    response_max: SimDuration,
    completed: u64,
    last_completion: SimTime,
    /// Host HDC commands to apply before the issue with the given
    /// sequence number (victim-cache mode).
    hdc_commands: HashMap<u64, Vec<HdcCommand>>,
    issued_count: u64,
    latency: crate::latency::LatencyHistogram,
    /// Overflow pins of the cooperative plan: (home virtual disk, phys
    /// block) → holder. Reads covered by home HDC ∪ this map are bus
    /// hits.
    coop_overflow: FxHashMap<(u16, u64), u16>,
    coop_hits: u64,
    /// Reusable buffer for periodic HDC flushes (no per-cycle
    /// allocation).
    flush_buf: Vec<forhdc_sim::PhysBlock>,
    /// Reusable buffer for striping splits (no per-request
    /// allocation on the issue path).
    split_buf: Vec<forhdc_sim::request::DiskExtent>,
    /// Number of engine shards (see [`System::with_shards`]). `1`
    /// selects the plain serial event loop.
    shards: usize,
    /// Scratch buffer for the window gather, reused across windows so
    /// the hot loop stays allocation-free.
    win_buf: Vec<(DiskId, SimTime)>,
    /// Round-robin read-split state: per virtual disk, whether the odd
    /// member serves the next read (mirrored arrays only).
    rr_next: Vec<bool>,
    /// Mirrored reads routed in total, and the subset routed by the
    /// configured policy. The remainder were failovers (counted in
    /// `fstats.failover_reads`), so
    /// `mirror_reads == mirror_policy_reads + failover_reads` always.
    mirror_reads: u64,
    mirror_policy_reads: u64,
    /// Blocks of the rebuild target already issued (copied or skipped
    /// after exhausted retries); the next chunk starts here.
    rebuild_next: u64,
    /// Earliest simulated time the next rebuild chunk may start (the
    /// pacing anchor).
    rebuild_pace_at: SimTime,
}

impl System {
    /// Assembles a system for `cfg` serving `workload`, planning the
    /// HDC contents from the trace (perfect knowledge, as in §6.1).
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity.
    pub fn new(cfg: SystemConfig, workload: &Workload) -> Self {
        System::new_traced(cfg, workload, NullTracer)
    }

    /// Assembles a system around a cooperative plan (see
    /// [`System::with_coop_plan_traced`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`System::with_plan`].
    pub fn with_coop_plan(cfg: SystemConfig, workload: &Workload, coop: CoopPlan) -> Self {
        System::with_coop_plan_traced(cfg, workload, coop, NullTracer)
    }

    /// Assembles a system with an explicit HDC plan (see
    /// [`System::with_plan_traced`]).
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity or
    /// the plan covers a different disk count.
    pub fn with_plan(cfg: SystemConfig, workload: &Workload, plan: HdcPlan) -> Self {
        System::with_plan_traced(cfg, workload, plan, NullTracer)
    }

    /// Assembles a checked-mode system: identical to [`System::new`]
    /// but with a [`FullAudit`] auditor attached, so every audit point
    /// validates its invariants and the run panics on the first
    /// violation.
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity, or
    /// (during the run) on any violated invariant.
    pub fn new_checked(
        cfg: SystemConfig,
        workload: &Workload,
    ) -> System<NullTracer, NoFaults, FullAudit> {
        System::new_traced_faulted_audited(cfg, workload, NullTracer, NoFaults, FullAudit::new())
    }
}

impl<T: Tracer> System<T> {
    /// Assembles a system with an attached tracer; otherwise identical
    /// to [`System::new`].
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity.
    pub fn new_traced(cfg: SystemConfig, workload: &Workload, tracer: T) -> Self {
        System::new_traced_faulted(cfg, workload, tracer, NoFaults)
    }

    /// Assembles a system around a cooperative plan: home pins go into
    /// their controllers' HDC regions; overflow pins are tracked at the
    /// host and served as controller-cache hits from their holders.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`System::with_plan`].
    pub fn with_coop_plan_traced(
        cfg: SystemConfig,
        workload: &Workload,
        coop: CoopPlan,
        tracer: T,
    ) -> Self {
        System::with_coop_plan_traced_faulted(cfg, workload, coop, tracer, NoFaults)
    }

    /// Assembles a system with an explicit HDC plan (for the periodic
    /// planner and for planning-policy ablations).
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity or
    /// the plan covers a different disk count.
    pub fn with_plan_traced(
        cfg: SystemConfig,
        workload: &Workload,
        plan: HdcPlan,
        tracer: T,
    ) -> Self {
        System::with_plan_traced_faulted(cfg, workload, plan, tracer, NoFaults)
    }
}

impl<F: FaultModel> System<NullTracer, F> {
    /// Assembles an untraced system with an attached fault model;
    /// otherwise identical to [`System::new`].
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity.
    pub fn new_faulted(cfg: SystemConfig, workload: &Workload, faults: F) -> Self {
        System::new_traced_faulted(cfg, workload, NullTracer, faults)
    }
}

impl<T: Tracer, F: FaultModel> System<T, F> {
    /// Assembles a system with both a tracer and a fault model attached
    /// but no auditor; see [`System::new_traced_faulted_audited`].
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity.
    pub fn new_traced_faulted(
        cfg: SystemConfig,
        workload: &Workload,
        tracer: T,
        faults: F,
    ) -> Self {
        System::new_traced_faulted_audited(cfg, workload, tracer, faults, NoChecks)
    }

    /// Cooperative-plan constructor with an attached fault model; see
    /// [`System::with_coop_plan_traced`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`System::with_plan`].
    pub fn with_coop_plan_traced_faulted(
        cfg: SystemConfig,
        workload: &Workload,
        coop: CoopPlan,
        tracer: T,
        faults: F,
    ) -> Self {
        System::with_coop_plan_traced_faulted_audited(cfg, workload, coop, tracer, faults, NoChecks)
    }

    /// Explicit-plan constructor with an attached fault model; see
    /// [`System::with_plan_traced`].
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity or
    /// the plan covers a different disk count.
    pub fn with_plan_traced_faulted(
        cfg: SystemConfig,
        workload: &Workload,
        plan: HdcPlan,
        tracer: T,
        faults: F,
    ) -> Self {
        System::with_plan_traced_faulted_audited(cfg, workload, plan, tracer, faults, NoChecks)
    }
}

impl<T: Tracer, F: FaultModel, A: Auditor> System<T, F, A> {
    /// Assembles a system with a tracer, a fault model, and an auditor
    /// attached (the fully general constructor; every other constructor
    /// funnels here).
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity, or
    /// — with an enabled auditor — on a violated construction-time
    /// invariant.
    pub fn new_traced_faulted_audited(
        cfg: SystemConfig,
        workload: &Workload,
        tracer: T,
        faults: F,
        auditor: A,
    ) -> Self {
        let striping =
            StripingMap::new(cfg.array.virtual_disks(), cfg.array.striping_unit_blocks());
        if cfg.cooperative_hdc && cfg.hdc_blocks() > 0 {
            let coop = plan_cooperative(&workload.trace, &striping, cfg.hdc_blocks());
            return System::with_coop_plan_traced_faulted_audited(
                cfg, workload, coop, tracer, faults, auditor,
            );
        }
        let plan = if cfg.hdc_blocks() > 0 {
            plan_top_misses(&workload.trace, &striping, cfg.hdc_blocks())
        } else {
            HdcPlan::empty(cfg.array.virtual_disks())
        };
        System::with_plan_traced_faulted_audited(cfg, workload, plan, tracer, faults, auditor)
    }

    /// Cooperative-plan constructor, fully general; see
    /// [`System::with_coop_plan_traced`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`System::with_plan`].
    pub fn with_coop_plan_traced_faulted_audited(
        cfg: SystemConfig,
        workload: &Workload,
        coop: CoopPlan,
        tracer: T,
        faults: F,
        auditor: A,
    ) -> Self {
        assert!(
            !cfg.array.mirrored,
            "cooperative HDC over mirrored pairs is not supported (pins address virtual disks)"
        );
        let plan = HdcPlan::from_per_disk(coop.home.clone());
        let mut sys =
            System::with_plan_traced_faulted_audited(cfg, workload, plan, tracer, faults, auditor);
        sys.coop_overflow.reserve(coop.overflow.len());
        for ((home_disk, block), holder) in coop.overflow {
            sys.coop_overflow.insert((home_disk, block.index()), holder);
        }
        sys
    }

    /// Explicit-plan constructor, fully general; see
    /// [`System::with_plan_traced`]. With an enabled auditor this also
    /// validates the FOR continuation bitmaps against the workload's
    /// filemap before the replay starts.
    ///
    /// # Panics
    ///
    /// Panics if the workload footprint exceeds the array capacity or
    /// the plan covers a different disk count.
    pub fn with_plan_traced_faulted_audited(
        cfg: SystemConfig,
        workload: &Workload,
        plan: HdcPlan,
        tracer: T,
        faults: F,
        mut auditor: A,
    ) -> Self {
        let virtual_disks = cfg.array.virtual_disks();
        let striping = StripingMap::new(virtual_disks, cfg.array.striping_unit_blocks());
        assert_eq!(
            plan.disks(),
            virtual_disks as usize,
            "plan/array disk mismatch"
        );
        let disk_capacity = cfg.array.disk.geometry.capacity_blocks();
        assert!(
            workload.layout.total_blocks() <= disk_capacity * virtual_disks as u64,
            "workload footprint exceeds array capacity"
        );
        if let Some(rb) = cfg.rebuild {
            assert!(cfg.array.mirrored, "rebuild requires a mirrored array");
            assert!(
                (rb.disk as usize) < cfg.array.disks as usize,
                "rebuild disk out of range"
            );
            assert!(
                rb.total_blocks <= disk_capacity,
                "rebuild target exceeds disk capacity"
            );
            assert!(rb.chunk_blocks > 0, "rebuild chunk must be non-zero");
        }
        // Bitmaps and HDC plans address virtual disks; under mirroring
        // both members of a pair hold identical data and get identical
        // copies.
        let mut bitmaps: Vec<Option<forhdc_layout::ForBitmap>> = if cfg.read_ahead.needs_bitmap() {
            let built = build_disk_bitmaps(&workload.layout, &striping, disk_capacity);
            if auditor.enabled() {
                // Checked mode: the continuation bitmaps the controllers
                // will consult must agree with the layout's filemap
                // before any read-ahead decision is taken from them.
                auditor.observe_structure(
                    0,
                    "FOR bitmap / filemap consistency",
                    forhdc_layout::check_bitmap_consistency(&workload.layout, &striping, &built),
                );
            }
            built.into_iter().map(Some).collect()
        } else {
            (0..virtual_disks).map(|_| None).collect()
        };
        let disks: Vec<DiskState> = (0..cfg.array.disks as usize)
            .map(|pd| {
                let vd = if cfg.array.mirrored { pd / 2 } else { pd };
                // The second (or only) consumer of a virtual disk's
                // bitmap takes ownership; only the first mirror member
                // pays for a copy.
                let bitmap = if cfg.array.mirrored && pd % 2 == 0 {
                    bitmaps[vd].clone()
                } else {
                    bitmaps[vd].take()
                };
                let mut ctl =
                    DiskController::new(&cfg.array.disk, cfg.read_ahead, cfg.hdc_blocks(), bitmap)
                        .with_replacement(cfg.block_replacement, cfg.segment_replacement);
                for &block in plan.blocks_for(vd) {
                    // The initial pin loads happen before the replay and
                    // are amortized over the period (§5), so they are
                    // not charged to the I/O time.
                    let pinned = ctl.pin(block);
                    debug_assert!(pinned, "plan exceeded HDC capacity");
                }
                DiskState {
                    mech: DiskMechanics::new(&cfg.array.disk),
                    sched: Scheduler::new(cfg.array.scheduler),
                    ctl,
                    stats: DiskStats::new(),
                    busy: false,
                    current: None,
                    busy_accum: SimDuration::ZERO,
                    busy_since: SimTime::ZERO,
                    busy_sampled: SimDuration::ZERO,
                    wake_scheduled: false,
                }
            })
            .collect();
        let payload_bytes = workload.trace.total_blocks() * cfg.array.disk.block_bytes() as u64;
        let bus = BusModel::new(cfg.array.bus_rate, cfg.array.bus_overhead);
        let driver = StreamDriver::new(&workload.trace, workload.streams);
        let lanes = disks.len() + HOST_LANES;
        let mirrored = cfg.array.mirrored;
        System {
            tracer,
            faults,
            auditor,
            fstats: FaultStats::default(),
            cfg,
            striping,
            disks,
            bus,
            queue: LaneCalendar::with_lanes(lanes),
            driver,
            // Closed-loop replay: at most one outstanding request per
            // stream, so the steady state never rehashes.
            pending: fx_map_with_capacity(workload.streams as usize),
            next_req: 0,
            workload_name: workload.name.clone(),
            payload_bytes,
            response_sum: SimDuration::ZERO,
            response_max: SimDuration::ZERO,
            completed: 0,
            last_completion: SimTime::ZERO,
            hdc_commands: HashMap::new(),
            issued_count: 0,
            latency: crate::latency::LatencyHistogram::new(),
            coop_overflow: FxHashMap::default(),
            coop_hits: 0,
            flush_buf: Vec::new(),
            split_buf: Vec::new(),
            shards: 1,
            win_buf: Vec::new(),
            rr_next: if mirrored {
                vec![false; virtual_disks as usize]
            } else {
                Vec::new()
            },
            mirror_reads: 0,
            mirror_policy_reads: 0,
            rebuild_next: 0,
            rebuild_pace_at: SimTime::ZERO,
        }
    }

    /// Selects the sharded event engine: per-disk media advancement in
    /// conservative lookahead windows, merged deterministically at
    /// window boundaries. Every output — report, CSVs, trace, digest —
    /// is byte-identical to the serial engine for any `n` (enforced by
    /// the determinism test matrix); `n = 1` (the default) runs the
    /// plain serial loop. Shards engage only on fault-free, untraced,
    /// unaudited runs; otherwise every event is a potential cross-disk
    /// interaction point and the engine serializes itself.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Attaches a host HDC command stream (victim-cache mode, §5):
    /// commands mapped to issue index `k` are applied just before the
    /// `k`-th request is issued. Pins charge a host→controller bus
    /// transfer.
    pub fn with_hdc_commands(mut self, commands: HashMap<u64, Vec<HdcCommand>>) -> Self {
        self.hdc_commands = commands;
        self
    }

    /// Runs the replay to completion and returns the report.
    pub fn run(self) -> Report {
        self.run_all().0
    }

    /// Runs the replay to completion and returns the report together
    /// with the tracer (holding every event it collected).
    pub fn run_traced(self) -> (Report, T) {
        let (report, tracer, _auditor) = self.run_all();
        (report, tracer)
    }

    /// Runs the replay to completion and returns the report together
    /// with the auditor (checked mode; panics on the first violated
    /// invariant, so a return means the run was clean).
    pub fn run_audited(self) -> (Report, A) {
        let (report, _tracer, auditor) = self.run_all();
        (report, auditor)
    }

    /// The event loop shared by every `run_*` entry point.
    fn run_all(mut self) -> (Report, T, A) {
        let initial = self.driver.start();
        for (stream, req) in initial {
            self.issue(stream, req, SimTime::ZERO);
        }
        if let Some(period) = self.cfg.hdc_flush_period {
            if self.cfg.hdc_blocks() > 0 && !self.queue.is_empty() {
                let lane = self.host_lane(LANE_FLUSH);
                self.queue
                    .schedule_lane(lane, SimTime::ZERO + period, Event::HdcFlush);
            }
        }
        if self.tracer.enabled() && !self.queue.is_empty() {
            if let Some(period) = self.cfg.trace_sample_period {
                let lane = self.host_lane(LANE_SAMPLE);
                self.queue
                    .schedule_lane(lane, SimTime::ZERO + period, Event::Sample);
            }
        }
        if self.faults.enabled() && !self.queue.is_empty() {
            if let Some(period) = self.faults.power_loss_period_ns() {
                self.queue.schedule_lane(
                    self.disks.len() + LANE_POWER,
                    SimTime::ZERO + SimDuration::from_nanos(period),
                    Event::PowerLoss,
                );
            }
        }
        if let Some(rb) = self.cfg.rebuild {
            if !self.queue.is_empty() {
                let lane = self.host_lane(LANE_REBUILD);
                self.queue
                    .schedule_lane(lane, SimTime::ZERO + rb.start, Event::RebuildTick);
            }
        }
        // The sharded engine only engages on fault-free, untraced,
        // unaudited runs without a rebuild: tracing orders every
        // emission globally, and faults/audits/rebuild copy legs can
        // couple disks at any event, so with any of them attached every
        // event is an interaction point and the conservative window
        // degenerates to the serial loop anyway.
        let windowed = self.shards > 1
            && !self.tracer.enabled()
            && !self.faults.enabled()
            && !self.auditor.enabled()
            && self.cfg.rebuild.is_none();
        loop {
            if windowed && self.run_window() {
                continue;
            }
            let Some(fired) = self.queue.pop() else { break };
            if self.auditor.enabled() {
                self.auditor.observe_event(fired.time.as_nanos());
            }
            match fired.event {
                Event::MediaDone { disk } => self.media_done(disk, fired.time),
                Event::SubDone { req } => self.sub_done(req, fired.time),
                Event::HdcFlush => self.hdc_flush(fired.time),
                Event::Sample => self.sample(fired.time),
                Event::RetryMedia { disk, op } => self.retry_media(disk, op, fired.time),
                Event::RetryBus {
                    req,
                    disk,
                    bytes,
                    attempt,
                } => self.reserve_bus_for(req, disk, bytes, fired.time, attempt),
                Event::DiskOnline { disk } => self.disk_online(disk, fired.time),
                Event::PowerLoss => self.power_loss(fired.time),
                Event::Timeout { req } => self.timeout(req, fired.time),
                Event::RebuildTick => self.rebuild_tick(fired.time),
            }
        }
        // The figure of merit is the completion of the last host
        // request; trailing internal work (a final scheduled flush) is
        // not the workload's I/O time.
        let io_time = self.last_completion.since(SimTime::ZERO);
        debug_assert!(
            self.driver.is_done(),
            "trace not drained: simulator stalled"
        );
        self.build_report(io_time)
    }

    fn issue(&mut self, stream: StreamId, req: TraceRequest, now: SimTime) {
        if !self.hdc_commands.is_empty() {
            if let Some(cmds) = self.hdc_commands.remove(&self.issued_count) {
                for cmd in cmds {
                    self.apply_hdc_command(cmd, now);
                }
            }
        }
        self.issued_count += 1;
        let id = self.next_req;
        self.next_req += 1;
        if self.auditor.enabled() {
            self.auditor.observe_issue(now.as_nanos());
        }
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Issue {
                t: now.as_nanos(),
                req: id,
                stream: stream.index(),
                start: req.start.index(),
                nblocks: req.nblocks,
                write: req.kind.is_write(),
            });
        }
        let mut extents = std::mem::take(&mut self.split_buf);
        self.striping
            .split_into(req.start, req.nblocks, &mut extents);
        // Under mirroring a write produces one completion per member;
        // count the sub-completions as they are created.
        self.pending.insert(
            id,
            PendingReq {
                stream,
                remaining: 0,
                issued_at: now,
                failed: false,
            },
        );
        if self.faults.enabled() {
            if let Some(timeout) = self.cfg.recovery.request_timeout {
                let lane = self.host_lane(LANE_TIMEOUT);
                self.queue
                    .schedule_lane(lane, now + timeout, Event::Timeout { req: id });
            }
        }
        let mut remaining = 0u32;
        for &extent in &extents {
            remaining += self.arrive(id, extent, req.kind, now);
        }
        self.split_buf = extents;
        self.pending.get_mut(&id).expect("just inserted").remaining = remaining;
    }

    /// Calendar lane of host stream `k` (a `LANE_*` offset): the
    /// per-disk media lanes come first, host streams after.
    #[inline]
    fn host_lane(&self, k: usize) -> usize {
        self.disks.len() + k
    }

    /// The physical members backing a virtual disk. They are adjacent,
    /// so a plain range covers both cases without allocating.
    fn members(&self, vd: usize) -> std::ops::Range<usize> {
        if self.cfg.array.mirrored {
            2 * vd..2 * vd + 2
        } else {
            vd..vd + 1
        }
    }

    /// Picks the mirror member to serve a read. A member inside an
    /// offline window never wins while its twin is up — the pair
    /// degrades to single-copy service instead of stalling the request
    /// (counted as a failover read). Otherwise the configured
    /// [`ReadSplit`] policy decides; the default `ClosestCopy` prefers
    /// a member that already caches the extent, else the less-loaded
    /// one.
    fn pick_read_member(
        &mut self,
        vd: usize,
        start: forhdc_sim::PhysBlock,
        nblocks: u32,
        now: SimTime,
    ) -> usize {
        let a = 2 * vd;
        let b = 2 * vd + 1;
        self.mirror_reads += 1;
        if self.faults.enabled() {
            let a_off = self
                .faults
                .offline_until(a as u16, now.as_nanos())
                .is_some();
            let b_off = self
                .faults
                .offline_until(b as u16, now.as_nanos())
                .is_some();
            if a_off != b_off {
                self.fstats.failover_reads += 1;
                return if a_off { b } else { a };
            }
        }
        self.mirror_policy_reads += 1;
        let load = |d: &Self, i: usize| d.disks[i].sched.len() + usize::from(d.disks[i].busy);
        match self.cfg.array.read_split {
            ReadSplit::PrimaryOnly => a,
            ReadSplit::RoundRobin => {
                let flip = &mut self.rr_next[vd];
                let pick = if *flip { b } else { a };
                *flip = !*flip;
                pick
            }
            ReadSplit::ShortestQueue => {
                if load(self, b) < load(self, a) {
                    b
                } else {
                    a
                }
            }
            ReadSplit::ClosestCopy => {
                if self.disks[a].ctl.covers(start, nblocks) {
                    a
                } else if self.disks[b].ctl.covers(start, nblocks) || load(self, b) < load(self, a)
                {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Applies one host HDC command: a pin moves one block of data
    /// host→controller over the shared bus; an unpin is command-only.
    fn apply_hdc_command(&mut self, cmd: HdcCommand, now: SimTime) {
        let disk = match cmd {
            HdcCommand::Pin(logical) => {
                let (disk, phys) = self.striping.locate(logical);
                let block_bytes = self.cfg.array.disk.block_bytes() as u64;
                self.bus.reserve(now, block_bytes);
                for m in self.members(disk.as_usize()) {
                    let _ = self.disks[m].ctl.pin(phys);
                }
                disk
            }
            HdcCommand::Unpin(logical) => {
                let (disk, phys) = self.striping.locate(logical);
                for m in self.members(disk.as_usize()) {
                    self.disks[m].ctl.unpin(phys);
                }
                disk
            }
        };
        if self.auditor.enabled() {
            // The HDC pin/unpin audit point.
            for m in self.members(disk.as_usize()) {
                self.audit_disk(m, now);
            }
        }
    }

    /// Routes one extent to its physical disk(s) and returns how many
    /// sub-completions were scheduled (one normally; one per mirror
    /// member for mirrored writes).
    fn arrive(
        &mut self,
        id: u64,
        extent: forhdc_sim::request::DiskExtent,
        kind: ReadWrite,
        now: SimTime,
    ) -> u32 {
        if !self.cfg.array.mirrored {
            self.dispatch(
                id,
                extent.disk.as_usize(),
                extent.start,
                extent.nblocks,
                kind,
                now,
            );
            return 1;
        }
        let vd = extent.disk.as_usize();
        match kind {
            ReadWrite::Read => {
                let member = self.pick_read_member(vd, extent.start, extent.nblocks, now);
                self.dispatch(id, member, extent.start, extent.nblocks, kind, now);
                1
            }
            ReadWrite::Write => {
                // Both members must be updated.
                self.dispatch(id, 2 * vd, extent.start, extent.nblocks, kind, now);
                self.dispatch(id, 2 * vd + 1, extent.start, extent.nblocks, kind, now);
                2
            }
        }
    }

    /// Presents one extent to one physical disk's controller.
    /// Whether a read extent is fully covered by the cooperative pin
    /// set (home HDC region plus sibling-held overflow blocks).
    fn coop_covers(&self, disk_idx: usize, start: forhdc_sim::PhysBlock, nblocks: u32) -> bool {
        if self.coop_overflow.is_empty() {
            return false;
        }
        let home = disk_idx as u16;
        (0..nblocks as u64).all(|i| {
            let b = start.offset(i);
            self.coop_overflow.contains_key(&(home, b.index()))
                || self.disks[disk_idx].ctl.covers(b, 1)
        })
    }

    fn dispatch(
        &mut self,
        id: u64,
        disk_idx: usize,
        start: forhdc_sim::PhysBlock,
        nblocks: u32,
        kind: ReadWrite,
        now: SimTime,
    ) {
        let block_bytes = self.cfg.array.disk.block_bytes() as u64;
        if kind.is_read() && self.coop_covers(disk_idx, start, nblocks) {
            // Cooperative hit: some blocks come from sibling
            // controllers, all over the same shared bus.
            self.coop_hits += 1;
            if self.tracer.enabled() {
                self.tracer.emit(TraceEvent::Probe {
                    t: now.as_nanos(),
                    req: id,
                    disk: disk_idx as u16,
                    nblocks,
                    result: ProbeResult::CoopHit,
                });
            }
            self.reserve_bus_for(id, disk_idx as u16, nblocks as u64 * block_bytes, now, 0);
            return;
        }
        let d = &mut self.disks[disk_idx];
        match d.ctl.on_request(kind, start, nblocks) {
            decision @ (ControllerDecision::CacheHit | ControllerDecision::HdcWriteAbsorbed) => {
                // Controller memory ↔ host transfer over the shared bus.
                if self.tracer.enabled() {
                    let result = if decision == ControllerDecision::CacheHit {
                        ProbeResult::Hit
                    } else {
                        ProbeResult::HdcAbsorbed
                    };
                    self.tracer.emit(TraceEvent::Probe {
                        t: now.as_nanos(),
                        req: id,
                        disk: disk_idx as u16,
                        nblocks,
                        result,
                    });
                }
                self.reserve_bus_for(id, disk_idx as u16, nblocks as u64 * block_bytes, now, 0);
            }
            ControllerDecision::Media {
                start,
                nblocks: total,
                read_ahead: _,
            } => {
                let cylinder = d.mech.geometry().cylinder_of(start);
                d.sched.push(QueuedOp {
                    token: id,
                    start,
                    nblocks: total,
                    requested: nblocks,
                    kind,
                    cylinder,
                    queued_at: now,
                    attempt: 0,
                });
                d.stats.note_queue_depth(d.sched.len(), now);
                if self.tracer.enabled() {
                    self.tracer.emit(TraceEvent::Probe {
                        t: now.as_nanos(),
                        req: id,
                        disk: disk_idx as u16,
                        nblocks,
                        result: ProbeResult::Miss,
                    });
                    self.tracer.emit(TraceEvent::Queue {
                        t: now.as_nanos(),
                        req: id,
                        disk: disk_idx as u16,
                        depth: d.sched.len() as u32,
                    });
                }
                if !d.busy {
                    self.start_next(DiskId::new(disk_idx as u16), now);
                }
            }
        }
    }

    fn start_next(&mut self, disk: DiskId, now: SimTime) {
        if self.faults.enabled() {
            if let Some(until) = self.faults.offline_until(disk.index(), now.as_nanos()) {
                // Offline window: in-flight service finishes, but no new
                // op starts until the window ends. One wake-up event per
                // stall; overlapping windows re-gate on wake.
                let d = &mut self.disks[disk.as_usize()];
                if !d.sched.is_empty() && !d.wake_scheduled {
                    d.wake_scheduled = true;
                    self.fstats.offline_stalls += 1;
                    if self.tracer.enabled() {
                        self.tracer.emit(TraceEvent::Fault {
                            t: now.as_nanos(),
                            req: u64::MAX,
                            disk: disk.index(),
                            kind: FaultKind::Offline,
                        });
                    }
                    // `u64::MAX` marks a permanently failed disk: no
                    // wake is scheduled and its queued ops never run
                    // (requests against it can still finish via the
                    // per-request timeout).
                    if until < u64::MAX {
                        self.queue
                            .schedule(SimTime::from_nanos(until), Event::DiskOnline { disk });
                    }
                }
                return;
            }
        }
        let scan_cost = self.cfg.array.disk.bitmap_scan_per_block;
        let is_for = self.cfg.read_ahead.needs_bitmap();
        let d = &mut self.disks[disk.as_usize()];
        let Some(started) = service_next(d, now, scan_cost, is_for) else {
            return;
        };
        if self.tracer.enabled() {
            let op = d.current.as_ref().expect("service_next set current");
            self.tracer.emit(TraceEvent::Media {
                t: now.as_nanos(),
                req: op.token,
                disk: disk.index(),
                wait: started.wait.as_nanos(),
                seek: op.timing.seek.as_nanos(),
                rotation: op.timing.rotation.as_nanos(),
                transfer: op.timing.transfer.as_nanos(),
                // Bitmap-scan cost rides in the overhead slot: it is
                // controller work charged before the media moves.
                overhead: (op.timing.overhead + started.extra).as_nanos(),
                nblocks: op.total,
                read_ahead: op.total - op.requested,
                write: op.kind.is_write(),
            });
        }
        self.queue
            .schedule_lane(disk.as_usize(), started.done, Event::MediaDone { disk });
    }

    /// Attempts one conservative lookahead window: a maximal batch of
    /// pending media completions that provably cannot interact — each
    /// fires no later than any queued host event and no later than
    /// anything the window itself will schedule (bus sub-completions
    /// predicted on a cloned [`BusModel`], next media ops bounded below
    /// by [`DiskMechanics::min_service`]). The batch advances disk
    /// state per shard — safely in parallel, since each completion
    /// touches only its own disk — and the host effects are then
    /// committed in the window's pop order, which is exactly the order
    /// the serial engine would have applied them. Ties at the guard are
    /// safe: events the window schedules get fresh (larger) sequence
    /// numbers, so an already-queued completion at the same instant
    /// still fires first, as it would serially.
    ///
    /// Returns `false` when the next pending event is not a media
    /// completion; the caller then pops it on the serial path.
    fn run_window(&mut self) -> bool {
        let ndisks = self.disks.len();
        let block_bytes = self.cfg.array.disk.block_bytes() as u64;
        let mut window = std::mem::take(&mut self.win_buf);
        window.clear();
        let mut bus_sim = self.bus.clone();
        let mut guard: Option<SimTime> = None;
        while let Some((t, Some(lane))) = self.queue.peek_source() {
            if lane >= ndisks || guard.is_some_and(|g| t > g) {
                break;
            }
            let fired = self.queue.pop().expect("peeked event vanished");
            debug_assert!(matches!(fired.event, Event::MediaDone { .. }));
            let d = &self.disks[lane];
            let op = d.current.as_ref().expect("media completion without an op");
            if op.token < REBUILD_TOKEN_BASE {
                // This completion will move its payload over the shared
                // bus; its sub-completion lands at the predicted slot
                // end and must stay outside the window.
                let end = bus_sim.reserve(t, op.requested as u64 * block_bytes).end;
                guard = Some(guard.map_or(end, |g| g.min(end)));
            }
            let floor = t + d.mech.min_service();
            guard = Some(guard.map_or(floor, |g| g.min(floor)));
            window.push((DiskId::new(lane as u16), t));
        }
        if window.is_empty() {
            self.win_buf = window;
            return false;
        }
        let shards = self.shards;
        // Worth fanning out only when the window spans several shards
        // AND the host has real parallelism to run them on. Otherwise
        // replay the popped completions through the serial handler in
        // pop order — by the window invariant that is exactly the
        // serial execution, with zero partitioning overhead.
        let mut occupied = 0u64;
        for &(disk, _) in &window {
            occupied |= 1 << (disk.as_usize() % shards.min(64));
        }
        // `available_parallelism` is a syscall — probe it once, not
        // once per window.
        static MULTI_CORE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let spawn = occupied.count_ones() > 1
            && *MULTI_CORE
                .get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() > 1));
        if !spawn {
            for &(disk, t) in &window {
                self.media_done(disk, t);
            }
            self.win_buf = window;
            return true;
        }
        let scan_cost = self.cfg.array.disk.bitmap_scan_per_block;
        let is_for = self.cfg.read_ahead.needs_bitmap();
        // Partition by shard (disk index mod shard count). A disk holds
        // at most one outstanding media op, so it appears at most once
        // per window and hands its mutable state to exactly one shard.
        let mut work: Vec<Vec<(usize, SimTime, &mut DiskState)>> =
            (0..shards).map(|_| Vec::new()).collect();
        {
            let mut refs: Vec<Option<&mut DiskState>> = self.disks.iter_mut().map(Some).collect();
            for (widx, &(disk, t)) in window.iter().enumerate() {
                let di = disk.as_usize();
                let d = refs[di].take().expect("disk appears twice in one window");
                work[di % shards].push((widx, t, d));
            }
        }
        let mut steps: Vec<Option<MediaStep>> = Vec::new();
        steps.resize_with(window.len(), || None);
        let mut busy: Vec<_> = work.into_iter().filter(|w| !w.is_empty()).collect();
        if busy.len() == 1 {
            // The whole window landed on one shard after all: advance
            // it inline.
            for (widx, t, d) in busy.pop().expect("non-empty batch list") {
                steps[widx] = Some(advance_media(d, t, scan_cost, is_for, block_bytes));
            }
        } else {
            // Fan the shard batches out; the first runs on this thread.
            let local = busy.remove(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = busy
                    .into_iter()
                    .map(|batch| {
                        s.spawn(move || {
                            batch
                                .into_iter()
                                .map(|(widx, t, d)| {
                                    (widx, advance_media(d, t, scan_cost, is_for, block_bytes))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for (widx, t, d) in local {
                    steps[widx] = Some(advance_media(d, t, scan_cost, is_for, block_bytes));
                }
                for h in handles {
                    for (widx, step) in h.join().expect("shard worker panicked") {
                        steps[widx] = Some(step);
                    }
                }
            });
        }
        // Deterministic merge: commit host effects in the window's pop
        // order, so bus slots and event sequence numbers come out
        // exactly as the serial engine assigns them.
        for (widx, &(disk, t)) in window.iter().enumerate() {
            let step = steps[widx].take().expect("window step missing");
            if let Some((token, bytes)) = step.bus {
                self.reserve_bus_for(token, disk.index(), bytes, t, 0);
            }
            if let Some(done) = step.next {
                self.queue
                    .schedule_lane(disk.as_usize(), done, Event::MediaDone { disk });
            }
        }
        self.win_buf = window;
        true
    }

    fn media_done(&mut self, disk: DiskId, now: SimTime) {
        let block_bytes = self.cfg.array.disk.block_bytes() as u64;
        let d = &mut self.disks[disk.as_usize()];
        let op = d.current.take().expect("media completion without an op");
        d.busy = false;
        d.busy_accum += now.since(d.busy_since);
        if self.faults.enabled() && self.media_done_faulted(disk, &op, now) {
            if self.auditor.enabled() {
                // Degraded completions mutate the caches too (read-ahead
                // aborts install partial runs; failed flushes re-dirty).
                self.audit_disk(disk.as_usize(), now);
            }
            self.start_next(disk, now);
            return;
        }
        retire_op(&mut self.disks[disk.as_usize()], &op);
        if self.auditor.enabled() {
            // The cache insert/evict audit point: `on_media_complete`
            // just installed the transferred run.
            self.audit_disk(disk.as_usize(), now);
        }
        if op.token < REBUILD_TOKEN_BASE {
            // Only the demanded payload crosses the bus; read-ahead
            // stays in the controller cache. Flush write-backs and
            // rebuild copy legs move data media <-> cache only, so they
            // skip both bus and completion.
            self.reserve_bus_for(
                op.token,
                disk.index(),
                op.requested as u64 * block_bytes,
                now,
                0,
            );
        } else if op.token < FLUSH_TOKEN_BASE {
            self.rebuild_advance(&op, now);
        }
        self.start_next(disk, now);
    }

    /// Issues the next paced chunk of the mirror rebuild: one media
    /// read on the source member (the target's twin). Its completion
    /// queues the matching write leg via [`System::rebuild_advance`].
    /// The copy stops once the target extent is covered or the
    /// foreground workload has drained.
    fn rebuild_tick(&mut self, now: SimTime) {
        let Some(rb) = self.cfg.rebuild else { return };
        if self.rebuild_next >= rb.total_blocks
            || (self.pending.is_empty() && self.driver.is_done())
        {
            return;
        }
        let left = rb.total_blocks - self.rebuild_next;
        let n = (rb.chunk_blocks as u64).min(left) as u32;
        let start = forhdc_sim::PhysBlock::new(self.rebuild_next);
        let src = (rb.disk ^ 1) as usize;
        let token = REBUILD_TOKEN_BASE + self.next_req;
        self.next_req += 1;
        // Anchor the pacing to the chunk's issue time, so a cap of R
        // bytes/s issues chunks no faster than R regardless of how long
        // each copy takes under contention.
        let bytes = n as u64 * self.cfg.array.disk.block_bytes() as u64;
        self.rebuild_pace_at = match bytes
            .saturating_mul(1_000_000_000)
            .checked_div(rb.rate_bytes_per_sec)
        {
            Some(pace_ns) => now + SimDuration::from_nanos(pace_ns.max(1)),
            None => now, // rate 0 = unpaced: next chunk as soon as this lands
        };
        let d = &mut self.disks[src];
        let cylinder = d.mech.geometry().cylinder_of(start);
        d.sched.push(QueuedOp {
            token,
            start,
            nblocks: n,
            requested: n,
            kind: ReadWrite::Read,
            cylinder,
            queued_at: now,
            attempt: 0,
        });
        d.stats.note_queue_depth(d.sched.len(), now);
        if !self.disks[src].busy {
            self.start_next(DiskId::new(src as u16), now);
        }
    }

    /// Advances the rebuild after one of its media legs completed: a
    /// finished source read queues the mirrored write onto the target;
    /// a finished target write accounts the chunk and schedules the
    /// next tick at the pacing anchor.
    fn rebuild_advance(&mut self, op: &CurrentOp, now: SimTime) {
        let Some(rb) = self.cfg.rebuild else { return };
        match op.kind {
            ReadWrite::Read => {
                let tgt = rb.disk as usize;
                let d = &mut self.disks[tgt];
                let cylinder = d.mech.geometry().cylinder_of(op.start);
                d.sched.push(QueuedOp {
                    token: op.token,
                    start: op.start,
                    nblocks: op.total,
                    requested: op.requested,
                    kind: ReadWrite::Write,
                    cylinder,
                    queued_at: now,
                    attempt: 0,
                });
                d.stats.note_queue_depth(d.sched.len(), now);
                if !self.disks[tgt].busy {
                    self.start_next(DiskId::new(tgt as u16), now);
                }
            }
            ReadWrite::Write => {
                self.fstats.rebuilt_blocks += op.total as u64;
                self.rebuild_next += op.total as u64;
                let lane = self.host_lane(LANE_REBUILD);
                self.queue
                    .schedule_lane(lane, self.rebuild_pace_at.max(now), Event::RebuildTick);
            }
        }
    }

    /// Handles a media completion under an active fault model: probes
    /// every block of the op against the model and, when one is bad,
    /// performs the degraded-mode bookkeeping (read-ahead abort, retry
    /// with backoff, or failed completion). Returns `true` when a fault
    /// was injected — the caller must then skip the healthy completion
    /// path. The healthy case returns `false` without touching state.
    fn media_done_faulted(&mut self, disk: DiskId, op: &CurrentOp, now: SimTime) -> bool {
        let first_bad = (0..op.total).find(|&i| {
            self.faults.media_error(
                disk.index(),
                op.start.offset(i as u64).index(),
                op.kind.is_write(),
            )
        });
        let Some(bad) = first_bad else {
            return false;
        };
        let block_bytes = self.cfg.array.disk.block_bytes() as u64;
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Fault {
                t: now.as_nanos(),
                req: op.token,
                disk: disk.index(),
                kind: if op.kind.is_write() {
                    FaultKind::MediaWrite
                } else {
                    FaultKind::MediaRead
                },
            });
        }
        if op.kind.is_read() && bad >= op.requested {
            // Read-ahead abort: the demanded prefix is intact. Install
            // it, move the payload, and degrade to demand-only service —
            // the error cost only the speculative blocks (FOR degrades
            // to demand reads instead of wedging).
            self.fstats.media_read_errors += 1;
            self.fstats.ra_aborts += 1;
            let d = &mut self.disks[disk.as_usize()];
            d.stats
                .record_op(&op.timing, bad as u64, 0, (bad - op.requested) as u64);
            d.ctl
                .on_media_complete(op.kind, op.start, bad, op.requested);
            self.reserve_bus_for(
                op.token,
                disk.index(),
                op.requested as u64 * block_bytes,
                now,
                0,
            );
            return true;
        }
        // A demanded block (or a write target) is bad: the op did its
        // mechanical work but transferred nothing.
        if op.kind.is_write() {
            self.fstats.media_write_errors += 1;
        } else {
            self.fstats.media_read_errors += 1;
        }
        self.disks[disk.as_usize()]
            .stats
            .record_op(&op.timing, 0, 0, 0);
        let policy = self.cfg.recovery;
        if op.attempt < policy.max_retries {
            self.fstats.retries += 1;
            let delay = policy.backoff(op.attempt);
            if self.tracer.enabled() {
                self.tracer.emit(TraceEvent::Retry {
                    t: now.as_nanos(),
                    req: op.token,
                    disk: disk.index(),
                    attempt: op.attempt + 1,
                    delay: delay.as_nanos(),
                });
            }
            // Reads retry demand-only: re-speculating into a bad region
            // would fail forever, so the retry drops the read-ahead.
            let nblocks = if op.kind.is_read() {
                op.requested
            } else {
                op.total
            };
            let cylinder = self.disks[disk.as_usize()]
                .mech
                .geometry()
                .cylinder_of(op.start);
            let retry = QueuedOp {
                token: op.token,
                start: op.start,
                nblocks,
                requested: op.requested,
                kind: op.kind,
                cylinder,
                queued_at: now,
                attempt: op.attempt + 1,
            };
            self.queue
                .schedule(now + delay, Event::RetryMedia { disk, op: retry });
            return true;
        }
        // Retries exhausted.
        if op.token >= FLUSH_TOKEN_BASE {
            // A failed flush: the volatile copy is all we have. Re-pin
            // the blocks dirty so a later flush can try again; blocks
            // unpinned in the meantime are lost writes.
            self.fstats.flush_failures += 1;
            let blocks: Vec<forhdc_sim::PhysBlock> =
                (0..op.total as u64).map(|i| op.start.offset(i)).collect();
            self.fstats.lost_dirty_blocks += self.disks[disk.as_usize()].ctl.unflush_hdc(&blocks);
        } else if op.token >= REBUILD_TOKEN_BASE {
            // A rebuild leg exhausted its retries: skip the chunk (it
            // stays unreconstructed, so it never counts as rebuilt) and
            // keep the copy moving.
            self.rebuild_next += op.total as u64;
            let lane = self.host_lane(LANE_REBUILD);
            self.queue
                .schedule_lane(lane, self.rebuild_pace_at.max(now), Event::RebuildTick);
        } else if let Some(p) = self.pending.get_mut(&op.token) {
            // Host request: complete it as an error so the stream keeps
            // flowing in degraded mode.
            p.failed = true;
            let lane = self.host_lane(LANE_SUB);
            self.queue
                .schedule_lane(lane, now, Event::SubDone { req: op.token });
        }
        true
    }

    /// Re-queues a media op after its retry backoff expired.
    fn retry_media(&mut self, disk: DiskId, mut op: QueuedOp, now: SimTime) {
        op.queued_at = now;
        let token = op.token;
        let d = &mut self.disks[disk.as_usize()];
        d.sched.push(op);
        d.stats.note_queue_depth(d.sched.len(), now);
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Queue {
                t: now.as_nanos(),
                req: token,
                disk: disk.index(),
                depth: d.sched.len() as u32,
            });
        }
        if !self.disks[disk.as_usize()].busy {
            self.start_next(disk, now);
        }
    }

    /// The offline window that stalled this disk has ended; resume. A
    /// still-open overlapping window simply re-gates in `start_next`.
    fn disk_online(&mut self, disk: DiskId, now: SimTime) {
        let d = &mut self.disks[disk.as_usize()];
        d.wake_scheduled = false;
        if !d.busy {
            self.start_next(disk, now);
        }
    }

    /// Controller power loss: every disk's volatile dirty HDC contents
    /// are discarded (the pins survive; the unwritten data does not).
    fn power_loss(&mut self, now: SimTime) {
        self.fstats.power_losses += 1;
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Fault {
                t: now.as_nanos(),
                req: u64::MAX,
                disk: 0,
                kind: FaultKind::PowerLoss,
            });
        }
        let mut lost = 0;
        for d in &mut self.disks {
            lost += d.ctl.discard_dirty_hdc();
        }
        self.fstats.lost_dirty_blocks += lost;
        if self.auditor.enabled() {
            for di in 0..self.disks.len() {
                self.audit_disk(di, now);
            }
        }
        // Keep the outage schedule while host work remains.
        if let Some(period) = self.faults.power_loss_period_ns() {
            if !(self.pending.is_empty() && self.driver.is_done()) {
                self.queue.schedule_lane(
                    self.disks.len() + LANE_POWER,
                    now + SimDuration::from_nanos(period),
                    Event::PowerLoss,
                );
            }
        }
    }

    /// Per-request deadline expired. If the request is still pending it
    /// completes now, as an error; its in-flight sub-operations finish
    /// on their own and their completions are dropped by `sub_done`.
    fn timeout(&mut self, id: u64, now: SimTime) {
        let Some(mut p) = self.pending.remove(&id) else {
            return;
        };
        self.fstats.timeouts += 1;
        p.failed = true;
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Timeout {
                t: now.as_nanos(),
                req: id,
            });
        }
        self.complete_request(id, p, now);
    }

    /// Reserves the shared bus for `bytes` of payload for request `id`
    /// and schedules its sub-completion, rolling the transient bus
    /// fault when a model is attached. Callers emit their own `Probe`
    /// events first, so the trace event order is unchanged from the
    /// fault-free build.
    fn reserve_bus_for(&mut self, id: u64, disk: u16, bytes: u64, now: SimTime, attempt: u32) {
        let slot = self.bus.reserve(now, bytes);
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Bus {
                t: now.as_nanos(),
                req: id,
                wait: slot.start.since(now).as_nanos(),
                busy: slot.end.since(slot.start).as_nanos(),
                bytes,
            });
        }
        if self.faults.enabled() && self.faults.bus_error() {
            self.fstats.bus_errors += 1;
            if self.tracer.enabled() {
                self.tracer.emit(TraceEvent::Fault {
                    t: now.as_nanos(),
                    req: id,
                    disk,
                    kind: FaultKind::Bus,
                });
            }
            let policy = self.cfg.recovery;
            if attempt < policy.max_retries {
                self.fstats.retries += 1;
                let delay = policy.backoff(attempt);
                if self.tracer.enabled() {
                    self.tracer.emit(TraceEvent::Retry {
                        t: now.as_nanos(),
                        req: id,
                        disk,
                        attempt: attempt + 1,
                        delay: delay.as_nanos(),
                    });
                }
                self.queue.schedule(
                    slot.end + delay,
                    Event::RetryBus {
                        req: id,
                        disk,
                        bytes,
                        attempt: attempt + 1,
                    },
                );
            } else {
                if let Some(p) = self.pending.get_mut(&id) {
                    p.failed = true;
                }
                let lane = self.host_lane(LANE_SUB);
                self.queue
                    .schedule_lane(lane, slot.end, Event::SubDone { req: id });
            }
            return;
        }
        let lane = self.host_lane(LANE_SUB);
        self.queue
            .schedule_lane(lane, slot.end, Event::SubDone { req: id });
    }

    /// Periodic `flush_hdc()`: write every dirty pinned block back to
    /// the media, as coalesced runs, charged like any other write.
    fn hdc_flush(&mut self, now: SimTime) {
        let mut dirty = std::mem::take(&mut self.flush_buf);
        for di in 0..self.disks.len() {
            let d = &mut self.disks[di];
            d.ctl.flush_hdc_into(&mut dirty);
            let mut i = 0;
            while i < dirty.len() {
                // Coalesce physically contiguous dirty blocks.
                let start = dirty[i];
                let mut n = 1u32;
                while i + (n as usize) < dirty.len()
                    && dirty[i + n as usize] == start.offset(n as u64)
                {
                    n += 1;
                }
                i += n as usize;
                let token = FLUSH_TOKEN_BASE + self.next_req;
                self.next_req += 1;
                let cylinder = d.mech.geometry().cylinder_of(start);
                d.sched.push(QueuedOp {
                    token,
                    start,
                    nblocks: n,
                    requested: n,
                    kind: ReadWrite::Write,
                    cylinder,
                    queued_at: now,
                    attempt: 0,
                });
                d.stats.note_queue_depth(d.sched.len(), now);
                if self.tracer.enabled() {
                    self.tracer.emit(TraceEvent::Queue {
                        t: now.as_nanos(),
                        req: token,
                        disk: di as u16,
                        depth: d.sched.len() as u32,
                    });
                }
            }
            if !self.disks[di].busy {
                self.start_next(DiskId::new(di as u16), now);
            }
            if self.auditor.enabled() {
                // The HDC flush audit point: dirty bits just cleared.
                self.audit_disk(di, now);
            }
        }
        self.flush_buf = dirty;
        // Keep flushing while host work remains.
        if let Some(period) = self.cfg.hdc_flush_period {
            if !(self.pending.is_empty() && self.driver.is_done()) {
                let lane = self.host_lane(LANE_FLUSH);
                self.queue
                    .schedule_lane(lane, now + period, Event::HdcFlush);
            }
        }
    }

    fn sub_done(&mut self, id: u64, now: SimTime) {
        let Some(p) = self.pending.get_mut(&id) else {
            // Only a fault path can orphan a completion: a request that
            // timed out already completed (as an error) while its
            // sub-operations were still in flight.
            debug_assert!(self.faults.enabled(), "completion for unknown request");
            return;
        };
        p.remaining -= 1;
        if p.remaining > 0 {
            return;
        }
        let p = self.pending.remove(&id).expect("just seen");
        self.complete_request(id, p, now);
    }

    /// Final accounting for one host request (normal or degraded
    /// completion).
    fn complete_request(&mut self, id: u64, p: PendingReq, now: SimTime) {
        let response = now.since(p.issued_at);
        if self.auditor.enabled() {
            self.auditor.observe_complete(now.as_nanos(), p.failed);
        }
        if self.tracer.enabled() {
            self.tracer.emit(TraceEvent::Complete {
                t: now.as_nanos(),
                req: id,
                response: response.as_nanos(),
            });
        }
        if p.failed {
            self.fstats.failed_requests += 1;
        }
        self.response_sum += response;
        self.response_max = self.response_max.max(response);
        self.latency.record(response);
        self.completed += 1;
        self.last_completion = self.last_completion.max(now);
        if let Some((stream, req)) = self.driver.complete(p.stream) {
            self.issue(stream, req, now);
        }
    }

    /// One sampler tick: emits a [`TraceEvent::Sample`] per disk.
    /// Reads simulation state and updates only the tracing-side
    /// `busy_sampled` bookkeeping, so the simulated outcome is
    /// identical with or without sampling.
    fn sample(&mut self, now: SimTime) {
        let period = self
            .cfg
            .trace_sample_period
            .expect("sample event without a configured period");
        for (i, d) in self.disks.iter_mut().enumerate() {
            // Interval-exact busy time: completed ops plus the live
            // prefix of the in-flight one, so the per-window delta can
            // never exceed the window.
            let busy_now = if d.busy {
                d.busy_accum + now.since(d.busy_since)
            } else {
                d.busy_accum
            };
            let delta = busy_now.saturating_sub(d.busy_sampled);
            d.busy_sampled = busy_now;
            let util_pm = (delta.as_nanos() * 1000 / period.as_nanos()).min(1000) as u32;
            let ra_pm = (d.ctl.cache_stats().ra_accuracy() * 1000.0).round() as u32;
            self.tracer.emit(TraceEvent::Sample {
                t: now.as_nanos(),
                disk: i as u16,
                depth: d.sched.len() as u32,
                util_pm,
                cache_blocks: d.ctl.ra_resident_blocks(),
                hdc_blocks: d.ctl.hdc_resident(),
                ra_pm,
            });
        }
        // Keep sampling while host work remains.
        if !(self.pending.is_empty() && self.driver.is_done()) {
            let lane = self.host_lane(LANE_SAMPLE);
            self.queue.schedule_lane(lane, now + period, Event::Sample);
        }
    }

    /// Checked mode: runs the deep structural validators of one disk's
    /// controller (cache coherence, HDC coherence, occupancy bounds)
    /// and routes the verdict through the auditor, which panics on the
    /// first `Err`. Only called behind `auditor.enabled()`.
    fn audit_disk(&mut self, disk_idx: usize, now: SimTime) {
        let result = self.disks[disk_idx].ctl.audit();
        self.auditor
            .observe_structure(now.as_nanos(), "controller structures", result);
    }

    fn build_report(mut self, io_time: SimDuration) -> (Report, T, A) {
        let mut cache = forhdc_cache::CacheStats::default();
        let mut hdc = forhdc_cache::HdcStats::default();
        let mut disk = DiskStats::default();
        let mut per_disk_busy = Vec::with_capacity(self.disks.len());
        let mut bitmap_scans = 0;
        let mut hdc_dirtied = 0;
        let mut hdc_dirty_unpins = 0;
        let mut still_dirty = 0;
        for d in &mut self.disks {
            // End-of-run flush (§6.1: dirty HDC blocks are updated at the
            // end of the execution; the paper measured the periodic-sync
            // alternative at <1% throughput effect).
            let _ = d.ctl.flush_hdc();
            cache.merge(d.ctl.cache_stats());
            hdc.merge(d.ctl.hdc_stats());
            disk.merge(&d.stats);
            per_disk_busy.push(d.stats.busy_time);
            bitmap_scans += d.ctl.bitmap_scans();
            hdc_dirtied += d.ctl.hdc_dirtied();
            hdc_dirty_unpins += d.ctl.hdc_dirty_unpins();
            still_dirty += d.ctl.hdc_dirty_count() as u64;
        }
        let mean_response = if self.completed == 0 {
            SimDuration::ZERO
        } else {
            self.response_sum / self.completed
        };
        let report = Report {
            workload: self.workload_name,
            policy: self.cfg.read_ahead,
            hdc_bytes_per_disk: self.cfg.hdc_bytes_per_disk,
            io_time,
            requests: self.completed,
            payload_bytes: self.payload_bytes,
            cache,
            hdc,
            disk,
            per_disk_busy,
            bus_busy: self.bus.busy_time(),
            bus_wait: self.bus.wait_time(),
            mean_response,
            max_response: self.response_max,
            latency: self.latency,
            coop_hits: self.coop_hits,
            bitmap_scans,
            faults: self.fstats,
            hdc_dirtied,
            hdc_dirty_unpins,
            mirror_reads: self.mirror_reads,
            mirror_policy_reads: self.mirror_policy_reads,
        };
        if self.auditor.enabled() {
            // The end-of-run conservation audit point, over the same
            // counters the report (and every CSV) is built from.
            self.auditor.observe_final(&FinalDigest {
                issued: self.issued_count,
                completed: report.requests,
                failed: report.faults.failed_requests,
                in_flight: self.pending.len() as u64,
                hdc_dirtied: report.hdc_dirtied,
                hdc_flushed: report.hdc.flushed,
                lost_dirty: report.faults.lost_dirty_blocks,
                dirty_unpins: report.hdc_dirty_unpins,
                still_dirty,
                mirror_reads: report.mirror_reads,
                mirror_policy_reads: report.mirror_policy_reads,
                mirror_failover_reads: report.faults.failover_reads,
                rebuilt_blocks: report.faults.rebuilt_blocks,
                rebuild_target_blocks: self.cfg.rebuild.map_or(0, |rb| rb.total_blocks),
            });
        }
        (report, self.tracer, self.auditor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forhdc_fault::{FaultConfig, OfflineWindow, SeededFaults};
    use forhdc_workload::SyntheticWorkload;

    fn small_wl(seed: u64) -> Workload {
        SyntheticWorkload::builder()
            .requests(400)
            .files(3_000)
            .file_blocks(4)
            .streams(32)
            .seed(seed)
            .build()
    }

    #[test]
    fn all_requests_complete() {
        let wl = small_wl(1);
        let r = System::new(SystemConfig::segm(), &wl).run();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert!(r.io_time > SimDuration::ZERO);
        assert!(r.disk.media_ops > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let wl = small_wl(2);
        let a = System::new(SystemConfig::for_(), &wl).run();
        let b = System::new(SystemConfig::for_(), &wl).run();
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(a.disk.media_ops, b.disk.media_ops);
        assert_eq!(a.cache.block_hits, b.cache.block_hits);
    }

    /// The tentpole guarantee: every shard count produces the same
    /// report as the serial engine, field for field. `Report`'s Debug
    /// rendering covers every counter and every float (Rust's float
    /// formatting round-trips, so equal strings mean equal bits).
    #[test]
    fn sharded_engine_matches_serial_exactly() {
        for (policy, hdc) in [
            (SystemConfig::for_(), 0u64),
            (SystemConfig::segm(), 0),
            (SystemConfig::for_(), 2 * 1024 * 1024),
        ] {
            let wl = small_wl(7);
            let cfg = policy.with_hdc(hdc);
            let base = format!("{:?}", System::new(cfg.clone(), &wl).run());
            for shards in [2usize, 3, 4, 8] {
                let got = format!(
                    "{:?}",
                    System::new(cfg.clone(), &wl).with_shards(shards).run()
                );
                assert_eq!(base, got, "shards={shards} diverged from serial");
            }
        }
    }

    /// Sharding must stay transparent in every observation mode:
    /// traced runs compare full JSONL transcripts, checked runs audit
    /// every invariant, faulted runs compare reports and fault
    /// counters. (In all three the conservative window collapses to
    /// the serial path — every event is a potential interaction point
    /// — and this matrix pins that behavior down.)
    #[test]
    fn shard_determinism_matrix() {
        use forhdc_trace::MemTracer;
        let wl = small_wl(13);
        for shards in [1usize, 2, 4] {
            // Traced: byte-identical event stream.
            let (r1, t1) =
                System::new_traced(SystemConfig::for_(), &wl, MemTracer::new()).run_traced();
            let (r2, t2) = System::new_traced(SystemConfig::for_(), &wl, MemTracer::new())
                .with_shards(shards)
                .run_traced();
            assert_eq!(t1.to_jsonl(), t2.to_jsonl(), "trace diverged at {shards}");
            assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
            // Checked: every audit invariant holds under sharding.
            let rc = System::new_checked(SystemConfig::for_(), &wl)
                .with_shards(shards)
                .run();
            assert_eq!(rc.requests, r1.requests);
            // Faulted: deterministic fault bookkeeping.
            let fcfg = FaultConfig::new(42).with_media_rates(1e-3, 1e-3);
            let fa =
                System::new_faulted(SystemConfig::for_(), &wl, SeededFaults::new(fcfg.clone()))
                    .run();
            let fb = System::new_faulted(SystemConfig::for_(), &wl, SeededFaults::new(fcfg))
                .with_shards(shards)
                .run();
            assert_eq!(
                format!("{fa:?}"),
                format!("{fb:?}"),
                "faulted diverged at {shards}"
            );
        }
    }

    #[test]
    fn for_beats_blind_on_small_files() {
        let wl = small_wl(3);
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let for_ = System::new(SystemConfig::for_(), &wl).run();
        assert!(
            for_.io_time < segm.io_time,
            "FOR {} !< Segm {}",
            for_.io_time,
            segm.io_time
        );
        // FOR moves far fewer speculative blocks.
        assert!(for_.disk.read_ahead_blocks < segm.disk.read_ahead_blocks / 2);
    }

    #[test]
    fn hdc_reduces_io_time_on_skewed_workload() {
        let wl = SyntheticWorkload::builder()
            .requests(600)
            .files(3_000)
            .file_blocks(4)
            .zipf_alpha(0.9)
            .streams(32)
            .seed(4)
            .build();
        let base = System::new(SystemConfig::segm(), &wl).run();
        let hdc = System::new(SystemConfig::segm().with_hdc(2 * 1024 * 1024), &wl).run();
        assert!(hdc.io_time <= base.io_time);
        assert!(hdc.hdc_hit_rate() > 0.0);
    }

    #[test]
    fn no_ra_never_reads_ahead() {
        let wl = small_wl(5);
        let r = System::new(SystemConfig::no_ra(), &wl).run();
        assert_eq!(r.disk.read_ahead_blocks, 0);
    }

    #[test]
    fn writes_hit_the_media_without_hdc() {
        let wl = SyntheticWorkload::builder()
            .requests(300)
            .files(2_000)
            .write_fraction(0.5)
            .seed(6)
            .build();
        let r = System::new(SystemConfig::segm(), &wl).run();
        assert!(r.disk.blocks_written > 0);
    }

    #[test]
    fn empty_trace_finishes_instantly() {
        let wl = Workload {
            name: "empty".into(),
            layout: forhdc_layout::LayoutBuilder::new().build(&[]),
            trace: forhdc_workload::Trace::default(),
            streams: 4,
        };
        let r = System::new(SystemConfig::segm(), &wl).run();
        assert_eq!(r.requests, 0);
        assert_eq!(r.io_time, SimDuration::ZERO);
    }

    #[test]
    fn striping_unit_sweep_runs() {
        let wl = small_wl(7);
        for unit in [16 * 1024u32, 64 * 1024, 128 * 1024] {
            let r = System::new(SystemConfig::segm().with_striping_unit(unit), &wl).run();
            assert_eq!(r.requests, wl.trace.len() as u64, "unit {unit}");
        }
    }

    #[test]
    fn periodic_flush_writes_dirty_blocks_and_costs_little() {
        // The paper: 30-second periodic syncs cost < 1% of throughput.
        // Proportions matter: the paper's claim holds for 30-second
        // syncs against 100+-second runs with ~2-20% writes. This
        // scaled-down version keeps the ratio of dirty traffic to run
        // length comparable; the full-scale check is the repro
        // harness's ablation-flush on the web clone.
        let wl = SyntheticWorkload::builder()
            .requests(3_000)
            .files(3_000)
            .file_blocks(4)
            .zipf_alpha(0.9)
            .write_fraction(0.05)
            .streams(64)
            .seed(9)
            .build();
        let lazy = System::new(SystemConfig::segm().with_hdc(2 << 20), &wl).run();
        let periodic = System::new(
            SystemConfig::segm()
                .with_hdc(2 << 20)
                .with_hdc_flush_period(SimDuration::from_secs(2)),
            &wl,
        )
        .run();
        assert_eq!(periodic.requests, lazy.requests);
        // The skewed write workload absorbs writes into HDC and the
        // periodic system writes them back during the run.
        assert!(periodic.hdc.flushed > 0, "no dirty blocks flushed");
        assert!(periodic.disk.blocks_written > lazy.disk.blocks_written);
        let slowdown = periodic.io_time.as_nanos() as f64 / lazy.io_time.as_nanos() as f64;
        assert!(
            slowdown < 1.05,
            "periodic flush cost {:.2}% at this write intensity",
            (slowdown - 1.0) * 100.0
        );
    }

    #[test]
    fn partial_track_policy_lands_between_no_ra_and_blind() {
        let wl = small_wl(10);
        let blind = System::new(SystemConfig::block(), &wl).run();
        let track = System::new(SystemConfig::partial_track(), &wl).run();
        let no_ra = System::new(SystemConfig::no_ra(), &wl).run();
        // Track-bounded read-ahead moves fewer speculative blocks than
        // blind, more than none.
        assert!(track.disk.read_ahead_blocks < blind.disk.read_ahead_blocks);
        assert!(track.disk.read_ahead_blocks > no_ra.disk.read_ahead_blocks);
    }

    #[test]
    fn mirrored_array_completes_and_doubles_writes() {
        let wl = SyntheticWorkload::builder()
            .requests(400)
            .files(3_000)
            .file_blocks(4)
            .write_fraction(0.3)
            .streams(32)
            .seed(11)
            .build();
        let plain = System::new(SystemConfig::segm(), &wl).run();
        let mirrored = System::new(SystemConfig::segm().with_mirroring(), &wl).run();
        assert_eq!(mirrored.requests, wl.trace.len() as u64);
        // Every write lands on both members.
        let written = mirrored.disk.blocks_written;
        assert!(
            written >= plain.disk.blocks_written * 2 * 9 / 10,
            "mirrored writes {written} vs plain {}",
            plain.disk.blocks_written
        );
    }

    #[test]
    fn mirrored_reads_use_both_members() {
        let wl = SyntheticWorkload::builder()
            .requests(600)
            .files(4_000)
            .file_blocks(4)
            .streams(64)
            .seed(12)
            .build();
        let r = System::new(SystemConfig::segm().with_mirroring(), &wl).run();
        // Read load balancing: no member idles while its twin works.
        let max = r.per_disk_busy.iter().map(|b| b.as_nanos()).max().unwrap();
        let min = r.per_disk_busy.iter().map(|b| b.as_nanos()).min().unwrap();
        assert!(min > 0, "an entire member idled");
        assert!(max < min * 3, "member imbalance {max} vs {min}");
    }

    #[test]
    fn mirroring_is_deterministic_too() {
        let wl = small_wl(13);
        let a = System::new(SystemConfig::for_().with_mirroring(), &wl).run();
        let b = System::new(SystemConfig::for_().with_mirroring(), &wl).run();
        assert_eq!(a.io_time, b.io_time);
    }

    #[test]
    fn read_split_primary_only_leaves_replicas_read_idle() {
        // small_wl is read-only, so under primary-only splitting the
        // odd members never see any work at all.
        let wl = small_wl(14);
        let r = System::new(
            SystemConfig::segm()
                .with_mirroring()
                .with_read_split(ReadSplit::PrimaryOnly),
            &wl,
        )
        .run();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert!(r.mirror_reads > 0);
        assert_eq!(r.mirror_reads, r.mirror_policy_reads);
        for (i, busy) in r.per_disk_busy.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(busy.as_nanos(), 0, "replica {i} served reads");
            }
        }
    }

    #[test]
    fn read_split_policies_complete_and_conserve() {
        for policy in [
            ReadSplit::ClosestCopy,
            ReadSplit::RoundRobin,
            ReadSplit::ShortestQueue,
            ReadSplit::PrimaryOnly,
        ] {
            let wl = small_wl(15);
            let cfg = SystemConfig::for_()
                .with_mirroring()
                .with_read_split(policy);
            let a = System::new(cfg.clone(), &wl).run();
            let b = System::new(cfg, &wl).run();
            assert_eq!(a.requests, wl.trace.len() as u64, "{policy:?}");
            assert_reports_identical(&a, &b);
            // Fault-free: every routed read was a policy pick.
            assert_eq!(a.mirror_reads, a.mirror_policy_reads, "{policy:?}");
            assert_eq!(a.faults.failover_reads, 0, "{policy:?}");
        }
    }

    #[test]
    fn round_robin_split_balances_the_members() {
        let wl = SyntheticWorkload::builder()
            .requests(600)
            .files(4_000)
            .file_blocks(4)
            .streams(64)
            .seed(16)
            .build();
        let r = System::new(
            SystemConfig::segm()
                .with_mirroring()
                .with_read_split(ReadSplit::RoundRobin),
            &wl,
        )
        .run();
        let max = r.per_disk_busy.iter().map(|b| b.as_nanos()).max().unwrap();
        let min = r.per_disk_busy.iter().map(|b| b.as_nanos()).min().unwrap();
        assert!(min > 0, "an entire member idled");
        assert!(max < min * 3, "round-robin imbalance {max} vs {min}");
    }

    #[test]
    fn replica_offline_degrades_reads_without_failures() {
        let wl = small_wl(17);
        // One replica of pair 0 is out for the first 50 ms: its twin
        // carries every read alone, and nothing fails.
        let window = OfflineWindow {
            disk: 1,
            start_ns: 0,
            end_ns: 50_000_000,
        };
        let fc = FaultConfig::new(2).with_offline(window);
        let (r, _audit) = System::new_traced_faulted_audited(
            SystemConfig::segm().with_mirroring(),
            &wl,
            NullTracer,
            SeededFaults::new(fc),
            FullAudit::new(),
        )
        .run_audited();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert_eq!(r.faults.failed_requests, 0);
        assert!(
            r.faults.failover_reads > 0,
            "no reads failed over: {:?}",
            r.faults
        );
        assert_eq!(
            r.mirror_reads,
            r.mirror_policy_reads + r.faults.failover_reads
        );
    }

    #[test]
    fn rebuild_reconstructs_target_under_load() {
        let wl = SyntheticWorkload::builder()
            .requests(1_200)
            .files(3_000)
            .file_blocks(4)
            .streams(32)
            .seed(18)
            .build();
        let rb = RebuildConfig {
            disk: 1,
            start: SimDuration::ZERO,
            rate_bytes_per_sec: 0, // unpaced: finish well inside the run
            chunk_blocks: 32,
            total_blocks: 256,
        };
        let (r, _audit) =
            System::new_checked(SystemConfig::segm().with_mirroring().with_rebuild(rb), &wl)
                .run_audited();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert_eq!(
            r.faults.rebuilt_blocks, rb.total_blocks,
            "rebuild incomplete: {:?}",
            r.faults
        );
    }

    #[test]
    fn rebuild_pacing_caps_the_copy_rate() {
        let wl = small_wl(19);
        let run = |rate: u64| {
            let rb = RebuildConfig {
                disk: 1,
                start: SimDuration::ZERO,
                rate_bytes_per_sec: rate,
                chunk_blocks: 32,
                total_blocks: 1 << 20,
            };
            System::new(SystemConfig::segm().with_mirroring().with_rebuild(rb), &wl).run()
        };
        let slow = run(1 << 20); // 1 MiB/s
        let fast = run(64 << 20); // 64 MiB/s
        assert!(
            slow.faults.rebuilt_blocks < fast.faults.rebuilt_blocks,
            "pacing had no effect: slow {} fast {}",
            slow.faults.rebuilt_blocks,
            fast.faults.rebuilt_blocks
        );
        // The cap bounds the copy directly: at most rate x io_time
        // bytes land on the target (one in-flight chunk of slack).
        let bb = SystemConfig::segm().array.disk.block_bytes() as f64;
        let budget = slow.io_time.as_secs_f64() * (1u64 << 20) as f64 / bb;
        assert!(
            slow.faults.rebuilt_blocks as f64 <= budget + 32.0,
            "paced copy overshot: {} blocks vs budget {budget:.0}",
            slow.faults.rebuilt_blocks
        );
    }

    #[test]
    fn rebuild_matches_across_shard_counts() {
        // A configured rebuild serializes the windowed engine, so any
        // shard count must reproduce the serial run byte-for-byte.
        let wl = small_wl(20);
        let rb = RebuildConfig {
            disk: 0,
            start: SimDuration::from_millis(10),
            rate_bytes_per_sec: 8 << 20,
            chunk_blocks: 32,
            total_blocks: 2048,
        };
        let cfg = SystemConfig::for_().with_mirroring().with_rebuild(rb);
        let serial = System::new(cfg.clone(), &wl).run();
        let sharded = System::new(cfg, &wl).with_shards(8).run();
        assert_reports_identical(&serial, &sharded);
        assert!(serial.faults.rebuilt_blocks > 0);
    }

    #[test]
    fn offline_window_then_rebuild_composes() {
        // The full failure story: a replica drops out (reads fail over
        // to its twin), comes back, and is reconstructed under load —
        // zero failed requests, all conservation laws audited.
        let wl = small_wl(21);
        let window = OfflineWindow {
            disk: 1,
            start_ns: 0,
            end_ns: 20_000_000,
        };
        let rb = RebuildConfig {
            disk: 1,
            start: SimDuration::from_millis(20),
            rate_bytes_per_sec: 0,
            chunk_blocks: 32,
            total_blocks: 512,
        };
        let fc = FaultConfig::new(4).with_offline(window);
        let (r, _audit) = System::new_traced_faulted_audited(
            SystemConfig::segm().with_mirroring().with_rebuild(rb),
            &wl,
            NullTracer,
            SeededFaults::new(fc),
            FullAudit::new(),
        )
        .run_audited();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert_eq!(r.faults.failed_requests, 0);
        assert!(
            r.faults.failover_reads > 0,
            "no degraded reads: {:?}",
            r.faults
        );
        assert!(
            r.faults.rebuilt_blocks > 0,
            "no rebuild progress: {:?}",
            r.faults
        );
    }

    #[test]
    fn cooperative_hdc_serves_overflow_from_siblings() {
        // Heat concentrated on ONE disk: with 32-block units, logical
        // units 0, 8, 16, … live on disk 0. 600 hot blocks there exceed
        // a 256-block HDC region; the per-disk plan can pin only 256 of
        // them, the cooperative plan pins all 600 (344 in siblings).
        use forhdc_workload::{Trace, TraceRequest};
        let layout = forhdc_layout::LayoutBuilder::new().build(&vec![4u32; 20_000]);
        let mut reqs = Vec::new();
        // Hot: blocks inside disk-0 units (unit u maps to disk u % 8).
        for _round in 0..6u64 {
            for i in 0..600u64 {
                let unit = (i / 32) * 8; // disk 0
                let l = unit * 32 + i % 32; // same hot set every round
                reqs.push(TraceRequest {
                    start: forhdc_sim::LogicalBlock::new(l),
                    nblocks: 1,
                    kind: ReadWrite::Read,
                });
            }
        }
        // Cold background spread everywhere.
        for i in 0..1_200u64 {
            reqs.push(TraceRequest {
                start: forhdc_sim::LogicalBlock::new(20_000 + i * 37 % 50_000),
                nblocks: 1,
                kind: ReadWrite::Read,
            });
        }
        let wl = Workload {
            name: "hot-disk".into(),
            layout,
            trace: Trace::new(reqs),
            streams: 64,
        };
        const HDC: u64 = 1 << 20; // 256 blocks per disk
        let per_disk = System::new(SystemConfig::segm().with_hdc(HDC), &wl).run();
        let coop = System::new(
            SystemConfig::segm().with_hdc(HDC).with_cooperative_hdc(),
            &wl,
        )
        .run();
        assert_eq!(coop.requests, wl.trace.len() as u64);
        assert_eq!(per_disk.coop_hits, 0);
        assert!(coop.coop_hits > 0, "no sibling-served hits");
        assert!(
            coop.io_time < per_disk.io_time,
            "coop {} should beat per-disk {} under one-disk heat",
            coop.io_time,
            per_disk.io_time
        );
    }

    #[test]
    fn tracing_never_perturbs_the_run_and_events_round_trip() {
        use forhdc_trace::MemTracer;
        let wl = small_wl(14);
        let plain = System::new(SystemConfig::for_(), &wl).run();
        let cfg = SystemConfig::for_().with_trace_sampling(SimDuration::from_millis(50));
        let (traced, tracer) = System::new_traced(cfg.clone(), &wl, MemTracer::new()).run_traced();
        // Identical outcome with the tracer attached and sampling on.
        assert_eq!(plain.io_time, traced.io_time);
        assert_eq!(plain.disk.media_ops, traced.disk.media_ops);
        assert_eq!(plain.cache.block_hits, traced.cache.block_hits);
        assert_eq!(plain.mean_response, traced.mean_response);
        let count =
            |f: fn(&TraceEvent) -> bool| tracer.events.iter().filter(|e| f(e)).count() as u64;
        assert_eq!(
            count(|e| matches!(e, TraceEvent::Issue { .. })),
            traced.requests
        );
        assert_eq!(
            count(|e| matches!(e, TraceEvent::Complete { .. })),
            traced.requests
        );
        assert!(count(|e| matches!(e, TraceEvent::Media { .. })) > 0);
        assert!(count(|e| matches!(e, TraceEvent::Sample { .. })) > 0);
        // Deterministic: a second traced run emits the same bytes.
        let (_, again) = System::new_traced(cfg, &wl, MemTracer::new()).run_traced();
        assert_eq!(again.to_jsonl(), tracer.to_jsonl());
        // And the JSONL encoding round-trips losslessly.
        let parsed = forhdc_trace::parse_jsonl(&tracer.to_jsonl()).unwrap();
        assert_eq!(parsed, tracer.events);
    }

    #[test]
    fn sampler_utilization_stays_in_bounds() {
        use forhdc_trace::MemTracer;
        let wl = small_wl(15);
        let cfg = SystemConfig::segm().with_trace_sampling(SimDuration::from_millis(20));
        let (_, tracer) = System::new_traced(cfg, &wl, MemTracer::new()).run_traced();
        let mut samples = 0;
        for ev in &tracer.events {
            if let TraceEvent::Sample { util_pm, ra_pm, .. } = ev {
                samples += 1;
                assert!(*util_pm <= 1000, "util {util_pm} out of per-mille range");
                assert!(*ra_pm <= 1000, "ra {ra_pm} out of per-mille range");
            }
        }
        assert!(samples > 0);
    }

    #[test]
    fn bitmap_scan_cost_charged_only_for_for() {
        let wl = small_wl(8);
        let segm = System::new(SystemConfig::segm(), &wl).run();
        let for_ = System::new(SystemConfig::for_(), &wl).run();
        assert_eq!(segm.bitmap_scans, 0);
        assert!(for_.bitmap_scans > 0);
    }

    /// Two reports must agree on everything a CSV or a figure could
    /// read off them.
    fn assert_reports_identical(a: &Report, b: &Report) {
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.disk.media_ops, b.disk.media_ops);
        assert_eq!(a.disk.blocks_read, b.disk.blocks_read);
        assert_eq!(a.disk.blocks_written, b.disk.blocks_written);
        assert_eq!(a.disk.read_ahead_blocks, b.disk.read_ahead_blocks);
        assert_eq!(a.cache.block_hits, b.cache.block_hits);
        assert_eq!(a.hdc, b.hdc);
        assert_eq!(a.mean_response, b.mean_response);
        assert_eq!(a.max_response, b.max_response);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.to_string(), b.to_string());
    }

    fn faulted_cfg() -> SystemConfig {
        SystemConfig::for_()
            .with_hdc(2 * 1024 * 1024)
            .with_hdc_flush_period(SimDuration::from_millis(50))
    }

    #[test]
    fn zero_rate_fault_model_is_byte_identical_to_no_faults() {
        // A SeededFaults engine with every rate at zero must not perturb
        // the run at all: same oracle as traced == untraced.
        let wl = small_wl(9);
        for cfg in [
            SystemConfig::segm(),
            SystemConfig::for_().with_hdc(2 * 1024 * 1024),
            faulted_cfg(),
        ] {
            let base = System::new(cfg.clone(), &wl).run();
            let zero =
                System::new_faulted(cfg, &wl, SeededFaults::new(FaultConfig::new(1234))).run();
            assert_reports_identical(&base, &zero);
        }
    }

    #[test]
    fn full_audit_is_byte_identical_to_unchecked_and_observes() {
        // Checked mode reads state and panics or does nothing: the same
        // oracle as traced == untraced and zero-rate faults == none.
        let wl = small_wl(9);
        for cfg in [
            SystemConfig::segm(),
            SystemConfig::for_().with_hdc(2 * 1024 * 1024),
            SystemConfig::segm()
                .with_hdc(1 << 20)
                .with_cooperative_hdc(),
            faulted_cfg(),
        ] {
            let base = System::new(cfg.clone(), &wl).run();
            let (checked, audit) = System::new_checked(cfg, &wl).run_audited();
            assert_reports_identical(&base, &checked);
            assert!(audit.observations() > 0, "auditor never observed");
        }
    }

    #[test]
    fn invariants_hold_under_combined_faults_in_checked_mode() {
        // The same write-heavy workload and fault mix as
        // `dirty_conservation_holds_under_combined_faults`, now with
        // every audit point live: retries, degraded completions, power
        // losses, and failed flushes must all keep the structures
        // coherent and the conservation laws exact.
        let wl = SyntheticWorkload::builder()
            .requests(2_000)
            .files(2_000)
            .file_blocks(4)
            .zipf_alpha(1.1)
            .write_fraction(0.5)
            .streams(32)
            .seed(14)
            .build();
        let cfg = FaultConfig::new(9)
            .with_media_rates(1e-3, 1e-2)
            .with_bus_rate(1e-3)
            .with_power_loss_period_ns(30_000_000);
        let (r, audit) = System::new_traced_faulted_audited(
            faulted_cfg().with_recovery(RecoveryPolicy {
                max_retries: 1,
                ..RecoveryPolicy::default()
            }),
            &wl,
            NullTracer,
            SeededFaults::new(cfg),
            FullAudit::new(),
        )
        .run_audited();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert!(r.faults.media_read_errors + r.faults.media_write_errors > 0);
        assert!(audit.observations() > 0);
    }

    #[test]
    fn planted_violation_panics_with_the_structured_report() {
        let wl = small_wl(12);
        let sys = System::new_traced_faulted_audited(
            SystemConfig::segm(),
            &wl,
            NullTracer,
            NoFaults,
            FullAudit::with_planted_violation(5),
        );
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || sys.run())).unwrap_err();
        let msg = *err.downcast::<String>().unwrap();
        assert!(msg.contains(forhdc_check::VIOLATION_PREFIX), "{msg}");
        assert!(msg.contains("planted violation"), "{msg}");
    }

    #[test]
    fn media_errors_degrade_but_never_wedge() {
        let wl = small_wl(10);
        let cfg = FaultConfig::new(7).with_media_rates(5e-3, 5e-3);
        let r = System::new_faulted(SystemConfig::for_(), &wl, SeededFaults::new(cfg)).run();
        // Every request still completes (possibly as an error) …
        assert_eq!(r.requests, wl.trace.len() as u64);
        // … and faults were actually exercised.
        assert!(r.faults.media_read_errors + r.faults.media_write_errors > 0);
        assert!(r.faults.retries > 0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let wl = small_wl(11);
        let cfg = FaultConfig::new(42)
            .with_media_rates(1e-3, 1e-3)
            .with_bus_rate(1e-3)
            .with_power_loss_period_ns(40_000_000);
        let a = System::new_faulted(faulted_cfg(), &wl, SeededFaults::new(cfg.clone())).run();
        let b = System::new_faulted(faulted_cfg(), &wl, SeededFaults::new(cfg)).run();
        assert_reports_identical(&a, &b);
    }

    #[test]
    fn offline_window_stalls_then_resumes() {
        let wl = small_wl(12);
        let window = OfflineWindow {
            disk: 0,
            start_ns: 0,
            end_ns: 30_000_000,
        };
        let healthy = System::new(SystemConfig::segm(), &wl).run();
        let cfg = FaultConfig::new(1).with_offline(window);
        let r = System::new_faulted(SystemConfig::segm(), &wl, SeededFaults::new(cfg)).run();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert!(r.faults.offline_stalls > 0);
        // The stall costs time but nothing else degrades.
        assert!(r.io_time >= healthy.io_time);
        assert_eq!(r.faults.failed_requests, 0);
    }

    #[test]
    fn power_loss_loses_dirty_hdc_blocks_and_accounting_conserves() {
        let wl = SyntheticWorkload::builder()
            .requests(2_000)
            .files(2_000)
            .file_blocks(4)
            .zipf_alpha(1.1)
            .write_fraction(0.5)
            .streams(32)
            .seed(13)
            .build();
        let cfg = FaultConfig::new(3).with_power_loss_period_ns(20_000_000);
        let r = System::new_faulted(
            SystemConfig::segm().with_hdc(2 * 1024 * 1024),
            &wl,
            SeededFaults::new(cfg),
        )
        .run();
        assert!(r.faults.power_losses > 0);
        assert!(r.faults.lost_dirty_blocks > 0);
        // Every clean→dirty transition is accounted for exactly once.
        assert_eq!(
            r.hdc_dirtied,
            r.hdc.flushed + r.faults.lost_dirty_blocks + r.hdc_dirty_unpins,
            "dirty-block conservation violated: {r:?}"
        );
    }

    #[test]
    fn dirty_conservation_holds_under_combined_faults() {
        let wl = SyntheticWorkload::builder()
            .requests(2_000)
            .files(2_000)
            .file_blocks(4)
            .zipf_alpha(1.1)
            .write_fraction(0.5)
            .streams(32)
            .seed(14)
            .build();
        let cfg = FaultConfig::new(9)
            .with_media_rates(1e-3, 1e-2)
            .with_bus_rate(1e-3)
            .with_power_loss_period_ns(30_000_000);
        let r = System::new_faulted(
            faulted_cfg().with_recovery(RecoveryPolicy {
                max_retries: 1,
                ..RecoveryPolicy::default()
            }),
            &wl,
            SeededFaults::new(cfg),
        )
        .run();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert_eq!(
            r.hdc_dirtied,
            r.hdc.flushed + r.faults.lost_dirty_blocks + r.hdc_dirty_unpins,
            "dirty-block conservation violated: {r:?}"
        );
    }

    #[test]
    fn request_timeout_completes_requests_as_errors() {
        let wl = small_wl(15);
        // An all-day offline window plus a short timeout: requests to
        // that disk can only finish via the timeout path.
        let window = OfflineWindow {
            disk: 0,
            start_ns: 0,
            end_ns: u64::MAX,
        };
        let cfg = FaultConfig::new(2).with_offline(window);
        let r = System::new_faulted(
            SystemConfig::segm().with_recovery(RecoveryPolicy {
                request_timeout: Some(SimDuration::from_millis(200)),
                ..RecoveryPolicy::default()
            }),
            &wl,
            SeededFaults::new(cfg),
        )
        .run();
        assert_eq!(r.requests, wl.trace.len() as u64);
        assert!(r.faults.timeouts > 0);
        assert_eq!(r.faults.failed_requests, r.faults.timeouts);
    }

    #[test]
    fn fault_trace_events_round_trip() {
        let wl = small_wl(16);
        let cfg = FaultConfig::new(5)
            .with_media_rates(2e-3, 2e-3)
            .with_bus_rate(1e-3);
        let (r, tracer) = System::new_traced_faulted(
            SystemConfig::for_(),
            &wl,
            forhdc_trace::MemTracer::new(),
            SeededFaults::new(cfg),
        )
        .run_traced();
        assert!(r.faults.media_read_errors + r.faults.media_write_errors > 0);
        let faults = tracer
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Fault { .. }))
            .count() as u64;
        let retries = tracer
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Retry { .. }))
            .count() as u64;
        assert!(faults > 0);
        assert_eq!(retries, r.faults.retries);
        // The JSONL round trip must preserve every fault event.
        let text = forhdc_trace::write_jsonl(&tracer.events);
        let parsed = forhdc_trace::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, tracer.events);
    }
}
