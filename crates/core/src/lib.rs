//! # forhdc-core
//!
//! The paper's contribution: **File-Oriented Read-ahead (FOR)** and
//! **Host-guided Device Caching (HDC)**, assembled with the simulator
//! substrate into a runnable full system.
//!
//! * [`policy`] — the four read-ahead disciplines compared in §6:
//!   conventional blind read-ahead over a segment cache (`Segm`), blind
//!   read-ahead over a block cache (`Block`), read-ahead disabled
//!   (`No-RA`), and FOR.
//! * [`controller`] — one disk's controller: the read-ahead cache, the
//!   optional HDC region, and the read-ahead decision (consulting the
//!   FOR continuation bitmap).
//! * [`planner`] — the host side of HDC: profile per-block miss counts
//!   and pin the top-K blocks of each disk, optionally per period.
//! * [`victim`] — §5's other example use of HDC: an array-wide victim
//!   cache for the host buffer cache, driven by a dynamic
//!   `pin_blk()`/`unpin_blk()` command stream.
//! * [`system`] — the closed-loop, event-driven simulation of the whole
//!   array serving a workload; produces a [`Report`].
//!
//! # Example
//!
//! ```
//! use forhdc_core::{System, SystemConfig};
//! use forhdc_workload::SyntheticWorkload;
//!
//! let wl = SyntheticWorkload::builder()
//!     .requests(300).files(2_000).file_blocks(4).seed(1).build();
//! let segm = System::new(SystemConfig::segm(), &wl).run();
//! let for_ = System::new(SystemConfig::for_(), &wl).run();
//! assert!(for_.io_time <= segm.io_time);
//! ```

pub mod controller;
pub mod latency;
pub mod planner;
pub mod policy;
pub mod report;
pub mod system;
pub mod victim;

pub use controller::DiskController;
pub use forhdc_check::{Auditor, FinalDigest, FullAudit, NoChecks, VIOLATION_PREFIX};
pub use forhdc_fault::{
    FaultConfig, FaultModel, FaultStats, NoFaults, OfflineWindow, SeededFaults,
};
pub use latency::LatencyHistogram;
pub use planner::{plan_cooperative, plan_periodic, plan_top_misses, CoopPlan, HdcPlan};
pub use policy::ReadAheadKind;
pub use report::Report;
pub use system::{RebuildConfig, RecoveryPolicy, System, SystemConfig};
pub use victim::{build_victim_workload, HdcCommand, VictimConfig, VictimWorkload};
