//! Rotational-position model.
//!
//! The platter spins continuously; the angular position at any simulated
//! instant is `(t mod T_rev) / T_rev`. Rotational latency to a target
//! sector is the time until that sector's leading edge rotates under the
//! head — simulated "in detail" as the paper puts it, rather than drawn
//! from a distribution.

use crate::time::{SimDuration, SimTime};

/// A constant-velocity spindle.
///
/// # Example
///
/// ```
/// use forhdc_sim::RotationModel;
///
/// let r = RotationModel::new(15_000);
/// assert_eq!(r.period().as_nanos(), 4_000_000); // 4 ms per revolution
/// assert_eq!(r.average_latency().as_nanos(), 2_000_000); // Table 1: 2.0 ms
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationModel {
    rpm: u32,
    period_ns: u64,
}

impl RotationModel {
    /// Creates a spindle spinning at `rpm` revolutions per minute.
    ///
    /// # Panics
    ///
    /// Panics if `rpm` is zero.
    pub fn new(rpm: u32) -> Self {
        assert!(rpm > 0, "rpm must be positive");
        let period_ns = 60_000_000_000u64 / rpm as u64;
        RotationModel { rpm, period_ns }
    }

    /// The spindle speed in revolutions per minute.
    pub fn rpm(&self) -> u32 {
        self.rpm
    }

    /// Duration of one revolution.
    pub fn period(&self) -> SimDuration {
        SimDuration::from_nanos(self.period_ns)
    }

    /// Average rotational latency (half a revolution).
    pub fn average_latency(&self) -> SimDuration {
        SimDuration::from_nanos(self.period_ns / 2)
    }

    /// Angular position at instant `t`, as a fraction of a revolution in
    /// `[0, 1)`.
    pub fn angle_at(&self, t: SimTime) -> f64 {
        (t.as_nanos() % self.period_ns) as f64 / self.period_ns as f64
    }

    /// Time from instant `t` until the platter reaches angular position
    /// `target` (fraction of a revolution in `[0, 1)`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `target` is outside `[0, 1)`.
    pub fn latency_to(&self, target: f64, t: SimTime) -> SimDuration {
        debug_assert!(
            (0.0..1.0).contains(&target),
            "target angle {target} out of range"
        );
        self.latency_to_ns(self.target_ns(target), t)
    }

    /// The instant-within-revolution (nanoseconds past the index mark)
    /// of angular position `target` — the precomputable half of
    /// [`RotationModel::latency_to`]. [`crate::DiskMechanics`] tabulates
    /// this per sector so the per-op path does no float math.
    pub fn target_ns(&self, target: f64) -> u64 {
        (target * self.period_ns as f64).round() as u64 % self.period_ns
    }

    /// Time from instant `t` until the platter reaches the position
    /// `target_ns` nanoseconds past the index mark (see
    /// [`RotationModel::target_ns`]).
    pub fn latency_to_ns(&self, target_ns: u64, t: SimTime) -> SimDuration {
        let now_ns = t.as_nanos() % self.period_ns;
        let wait = if target_ns >= now_ns {
            target_ns - now_ns
        } else {
            self.period_ns - (now_ns - target_ns)
        };
        SimDuration::from_nanos(wait)
    }
}

impl Default for RotationModel {
    fn default() -> Self {
        RotationModel::new(15_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_15000_rpm_is_4ms() {
        let r = RotationModel::new(15_000);
        assert_eq!(r.period(), SimDuration::from_millis(4));
        assert_eq!(r.rpm(), 15_000);
    }

    #[test]
    fn angle_advances_linearly_and_wraps() {
        let r = RotationModel::new(15_000);
        assert_eq!(r.angle_at(SimTime::ZERO), 0.0);
        assert!((r.angle_at(SimTime::from_nanos(1_000_000)) - 0.25).abs() < 1e-12);
        assert!((r.angle_at(SimTime::from_nanos(5_000_000)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn latency_to_ahead_and_behind() {
        let r = RotationModel::new(15_000);
        let t = SimTime::from_nanos(1_000_000); // angle 0.25
                                                // Target just ahead: quarter revolution away.
        assert_eq!(r.latency_to(0.5, t), SimDuration::from_millis(1));
        // Target just behind: three quarters away.
        assert_eq!(r.latency_to(0.0, t), SimDuration::from_millis(3));
    }

    #[test]
    fn latency_at_exact_target_is_zero() {
        let r = RotationModel::new(15_000);
        let t = SimTime::from_nanos(2_000_000); // angle 0.5
        assert_eq!(r.latency_to(0.5, t), SimDuration::ZERO);
    }

    #[test]
    fn latency_never_exceeds_period() {
        let r = RotationModel::new(15_000);
        for i in 0..200u64 {
            let t = SimTime::from_nanos(i * 37_911);
            for j in 0..20 {
                let target = j as f64 / 20.0;
                assert!(r.latency_to(target, t) < r.period());
            }
        }
    }
}
