//! Disk geometry: mapping physical block numbers to cylinders, surfaces,
//! and sectors.
//!
//! The model is a classic non-zoned geometry (constant sectors per track).
//! The paper's drive, an IBM Ultrastar 36Z15, has roughly 440 sectors per
//! track; the default geometry here reproduces the drive's 18-GByte
//! capacity and its ~3.4 ms average seek time (see
//! [`crate::seek::SeekModel`]).

use crate::request::PhysBlock;

/// The physical location of a block: which cylinder, which surface (head),
/// and the first sector of the block on that track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAddress {
    /// Cylinder index, `0..cylinders`.
    pub cylinder: u32,
    /// Surface (head) index, `0..surfaces`.
    pub surface: u32,
    /// First 512-byte sector of the block within the track.
    pub sector: u32,
}

/// Non-zoned disk geometry.
///
/// Blocks are laid out track-by-track within a cylinder, then
/// cylinder-by-cylinder, which is the layout that makes sequential
/// physical blocks cheap to read (no seek within a cylinder).
///
/// # Example
///
/// ```
/// use forhdc_sim::DiskGeometry;
///
/// let g = DiskGeometry::ultrastar_36z15();
/// assert_eq!(g.block_bytes(), 4096);
/// // 18 GB drive => ~4.3M 4-KByte blocks.
/// assert!(g.capacity_blocks() > 4_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskGeometry {
    sectors_per_track: u32,
    surfaces: u32,
    cylinders: u32,
    sectors_per_block: u32,
    /// Cached `blocks_per_track` — [`DiskGeometry::address`] sits on
    /// the per-media-op hot path, so the derived quantities are
    /// computed once at construction instead of per call.
    bpt: u32,
    /// Cached `blocks_per_cylinder`.
    bpc: u32,
    /// Cached `capacity_blocks`.
    capacity: u64,
}

/// Bytes in one 512-byte sector.
pub const SECTOR_BYTES: u32 = 512;

impl DiskGeometry {
    /// Creates a geometry from explicit parameters.
    ///
    /// `sectors_per_block` is `block_bytes / 512`; blocks must align to
    /// track boundaries cleanly enough to address, so `sectors_per_track`
    /// must be a multiple of `sectors_per_block`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or if `sectors_per_track` is not a
    /// multiple of `sectors_per_block`.
    pub fn new(sectors_per_track: u32, surfaces: u32, cylinders: u32, block_bytes: u32) -> Self {
        assert!(sectors_per_track > 0 && surfaces > 0 && cylinders > 0 && block_bytes > 0);
        assert!(
            block_bytes.is_multiple_of(SECTOR_BYTES),
            "block size must be a multiple of 512"
        );
        let sectors_per_block = block_bytes / SECTOR_BYTES;
        assert!(
            sectors_per_track.is_multiple_of(sectors_per_block),
            "sectors per track ({sectors_per_track}) must be a multiple of sectors per block ({sectors_per_block})"
        );
        let bpt = sectors_per_track / sectors_per_block;
        let bpc = bpt * surfaces;
        DiskGeometry {
            sectors_per_track,
            surfaces,
            cylinders,
            sectors_per_block,
            bpt,
            bpc,
            capacity: bpc as u64 * cylinders as u64,
        }
    }

    /// Creates a geometry with (at least) `capacity_bytes` of space by
    /// solving for the cylinder count.
    ///
    /// # Panics
    ///
    /// Panics on zero parameters or misaligned block size (see
    /// [`DiskGeometry::new`]).
    pub fn with_capacity(
        capacity_bytes: u64,
        sectors_per_track: u32,
        surfaces: u32,
        block_bytes: u32,
    ) -> Self {
        let cylinder_bytes = sectors_per_track as u64 * SECTOR_BYTES as u64 * surfaces as u64;
        assert!(cylinder_bytes > 0);
        let cylinders = capacity_bytes.div_ceil(cylinder_bytes) as u32;
        DiskGeometry::new(sectors_per_track, surfaces, cylinders, block_bytes)
    }

    /// Geometry matched to the paper's IBM Ultrastar 36Z15: 18 GBytes,
    /// ~440 sectors per track, 4-KByte blocks, and a cylinder count
    /// (~10 000) that reproduces the drive's 3.4 ms average seek under
    /// the paper's seek model.
    pub fn ultrastar_36z15() -> Self {
        DiskGeometry::with_capacity(18_000_000_000, 440, 8, 4096)
    }

    /// Sectors on one track.
    pub fn sectors_per_track(&self) -> u32 {
        self.sectors_per_track
    }

    /// Number of recording surfaces (heads).
    pub fn surfaces(&self) -> u32 {
        self.surfaces
    }

    /// Number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.cylinders
    }

    /// Bytes in one block.
    pub fn block_bytes(&self) -> u32 {
        self.sectors_per_block * SECTOR_BYTES
    }

    /// Blocks on one track.
    pub fn blocks_per_track(&self) -> u32 {
        self.bpt
    }

    /// Blocks in one cylinder (all surfaces).
    pub fn blocks_per_cylinder(&self) -> u32 {
        self.bpc
    }

    /// Total addressable blocks on the disk.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_blocks() * self.block_bytes() as u64
    }

    /// Maps a physical block to its on-disk address.
    ///
    /// # Panics
    ///
    /// Panics if `block` is beyond the disk capacity.
    pub fn address(&self, block: PhysBlock) -> BlockAddress {
        assert!(
            block.index() < self.capacity,
            "block {block} beyond capacity {}",
            self.capacity
        );
        // Any block index that fits in 32 bits (every realistic drive)
        // takes 32-bit divisions — roughly half the latency of the
        // 64-bit ones on current cores, and this runs per media op.
        if let Ok(idx) = u32::try_from(block.index()) {
            let cylinder = idx / self.bpc;
            let within = idx % self.bpc;
            BlockAddress {
                cylinder,
                surface: within / self.bpt,
                sector: within % self.bpt * self.sectors_per_block,
            }
        } else {
            let cylinder = (block.index() / self.bpc as u64) as u32;
            let within = (block.index() % self.bpc as u64) as u32;
            BlockAddress {
                cylinder,
                surface: within / self.bpt,
                sector: within % self.bpt * self.sectors_per_block,
            }
        }
    }

    /// The cylinder holding `block` (convenience for schedulers).
    ///
    /// # Panics
    ///
    /// Panics if `block` is beyond the disk capacity.
    pub fn cylinder_of(&self, block: PhysBlock) -> u32 {
        self.address(block).cylinder
    }

    /// The angular position of the start of `block` on its track, as a
    /// fraction of a revolution in `[0, 1)`.
    pub fn angle_of(&self, block: PhysBlock) -> f64 {
        let addr = self.address(block);
        addr.sector as f64 / self.sectors_per_track as f64
    }
}

impl Default for DiskGeometry {
    fn default() -> Self {
        DiskGeometry::ultrastar_36z15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ultrastar_matches_paper_capacity() {
        let g = DiskGeometry::ultrastar_36z15();
        assert!(g.capacity_bytes() >= 18_000_000_000);
        // Cylinder count near 10k keeps average seek near the nominal 3.4 ms.
        assert!(
            (9_000..11_000).contains(&g.cylinders()),
            "cylinders = {}",
            g.cylinders()
        );
        assert_eq!(g.blocks_per_track(), 55);
    }

    #[test]
    fn address_roundtrip_layout() {
        let g = DiskGeometry::new(40, 2, 10, 4096); // 5 blocks/track
        assert_eq!(g.blocks_per_track(), 5);
        assert_eq!(g.blocks_per_cylinder(), 10);
        assert_eq!(g.capacity_blocks(), 100);
        // Block 0: first block of cylinder 0, surface 0.
        assert_eq!(
            g.address(PhysBlock::new(0)),
            BlockAddress {
                cylinder: 0,
                surface: 0,
                sector: 0
            }
        );
        // Block 5: first block of surface 1, same cylinder.
        assert_eq!(
            g.address(PhysBlock::new(5)),
            BlockAddress {
                cylinder: 0,
                surface: 1,
                sector: 0
            }
        );
        // Block 10: next cylinder.
        assert_eq!(g.address(PhysBlock::new(10)).cylinder, 1);
        // Sequential blocks advance sectors by the block size.
        assert_eq!(g.address(PhysBlock::new(1)).sector, 8);
    }

    #[test]
    fn angle_wraps_track() {
        let g = DiskGeometry::new(40, 2, 10, 4096);
        assert_eq!(g.angle_of(PhysBlock::new(0)), 0.0);
        assert!((g.angle_of(PhysBlock::new(1)) - 0.2).abs() < 1e-12);
        assert!((g.angle_of(PhysBlock::new(4)) - 0.8).abs() < 1e-12);
        assert_eq!(g.angle_of(PhysBlock::new(5)), 0.0); // new track
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn address_out_of_range_panics() {
        let g = DiskGeometry::new(40, 2, 10, 4096);
        g.address(PhysBlock::new(100));
    }

    #[test]
    fn with_capacity_rounds_up() {
        let g = DiskGeometry::with_capacity(1_000_000, 40, 2, 4096);
        assert!(g.capacity_bytes() >= 1_000_000);
        assert!(g.capacity_bytes() < 1_000_000 + 2 * 40 * 512 * 2);
    }

    #[test]
    #[should_panic]
    fn misaligned_block_size_panics() {
        // 24 sectors/track not divisible by 16-sector (8 KiB) blocks? 24 % 16 != 0.
        let _ = DiskGeometry::new(24, 2, 10, 8192);
    }
}
