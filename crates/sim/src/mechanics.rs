//! Mechanical service-time computation.
//!
//! Implements the paper's service model
//! `T(r) = seek_time + rot_latency + (r × S) / xfer_rate`
//! with the seek time from the piecewise model, the rotational latency
//! from the tracked angular position, and the media transfer at the raw
//! rate. The head's cylinder position persists between operations so
//! that LOOK scheduling and seek distances are meaningful.

use crate::config::DiskConfig;
use crate::geometry::DiskGeometry;
use crate::request::{PhysBlock, ReadWrite};
use crate::rotation::RotationModel;
use crate::seek::SeekModel;
use crate::time::{SimDuration, SimTime};

/// Breakdown of one media operation's positioning and transfer time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceTiming {
    /// Head movement to the target cylinder.
    pub seek: SimDuration,
    /// Wait for the target sector to rotate under the head.
    pub rotation: SimDuration,
    /// Media transfer of all blocks (including any read-ahead).
    pub transfer: SimDuration,
    /// Fixed controller processing overhead.
    pub overhead: SimDuration,
}

impl ServiceTiming {
    /// Total service time: seek + rotation + transfer + overhead.
    pub fn total(&self) -> SimDuration {
        self.seek + self.rotation + self.transfer + self.overhead
    }
}

/// The moving parts of one disk: geometry, seek and rotation models, and
/// the persistent head position.
///
/// # Example
///
/// ```
/// use forhdc_sim::{DiskConfig, DiskMechanics, SimTime};
/// use forhdc_sim::request::{PhysBlock, ReadWrite};
///
/// let mut mech = DiskMechanics::new(&DiskConfig::default());
/// let t1 = mech.service(ReadWrite::Read, PhysBlock::new(0), 32, SimTime::ZERO);
/// // Reading 32 blocks (128 KB) at 54 MB/s takes ~2.43 ms of transfer.
/// assert!((t1.transfer.as_millis_f64() - 2.43).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct DiskMechanics {
    geometry: DiskGeometry,
    seek: SeekModel,
    rotation: RotationModel,
    media_rate: u64,
    zone_profile: Option<crate::zones::ZoneProfile>,
    overhead: SimDuration,
    head_cylinder: u32,
    /// `rotation.target_ns(angle_of(sector))` tabulated per sector, so
    /// the per-op service computation does no floating-point math. The
    /// table is built with the exact expression `latency_to` evaluates,
    /// making the two paths bit-identical.
    rot_target_ns: Vec<u64>,
}

impl DiskMechanics {
    /// Creates mechanics from a disk configuration, head parked at
    /// cylinder 0.
    pub fn new(cfg: &DiskConfig) -> Self {
        let rotation = RotationModel::new(cfg.rpm);
        let spt = cfg.geometry.sectors_per_track();
        let rot_target_ns = (0..spt)
            .map(|s| rotation.target_ns(s as f64 / spt as f64))
            .collect();
        DiskMechanics {
            geometry: cfg.geometry,
            seek: cfg.seek,
            rotation,
            media_rate: cfg.media_rate,
            zone_profile: cfg.zone_profile.clone(),
            overhead: cfg.controller_overhead,
            head_cylinder: 0,
            rot_target_ns,
        }
    }

    /// The cylinder the head currently rests on.
    pub fn head_cylinder(&self) -> u32 {
        self.head_cylinder
    }

    /// Forces the head position (useful in tests).
    pub fn set_head_cylinder(&mut self, cylinder: u32) {
        self.head_cylinder = cylinder;
    }

    /// The geometry this mechanism is built on.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The rotation model (for average-latency queries).
    pub fn rotation(&self) -> &RotationModel {
        &self.rotation
    }

    /// Computes the timing of a media operation starting at simulated
    /// instant `now`, reading or writing `nblocks` blocks beginning at
    /// `start`, and moves the head accordingly.
    ///
    /// Reads and writes are mechanically symmetric in this model; the
    /// distinction is kept for stats and for extensions (e.g. write
    /// settle time).
    ///
    /// # Panics
    ///
    /// Panics if `nblocks` is zero or the extent runs past the end of
    /// the disk.
    pub fn service(
        &mut self,
        kind: ReadWrite,
        start: PhysBlock,
        nblocks: u32,
        now: SimTime,
    ) -> ServiceTiming {
        let _ = kind;
        assert!(nblocks > 0, "media operation of zero blocks");
        let last = start.offset(nblocks as u64 - 1);
        assert!(
            last.index() < self.geometry.capacity_blocks(),
            "operation past end of disk: {last}"
        );
        let target = self.geometry.address(start);
        let distance = self.head_cylinder.abs_diff(target.cylinder);
        let seek = self.seek.seek_time(distance);
        let rotation = self
            .rotation
            .latency_to_ns(self.rot_target_ns[target.sector as usize], now + seek);
        // Zoned recording: outer cylinders transfer faster.
        let rate = match &self.zone_profile {
            Some(z) => (self.media_rate as f64 * z.scale_at(target.cylinder)) as u64,
            None => self.media_rate,
        };
        let transfer =
            SimDuration::for_transfer(nblocks as u64 * self.geometry.block_bytes() as u64, rate);
        // The head ends on the extent's last cylinder — almost always
        // the one it started on, so the second address computation is
        // branched away rather than divided for.
        let bpc = self.geometry.blocks_per_cylinder() as u64;
        let past_start_cyl = last.index() - target.cylinder as u64 * bpc;
        self.head_cylinder = if past_start_cyl < bpc {
            target.cylinder
        } else {
            target.cylinder + (past_start_cyl / bpc) as u32
        };
        debug_assert_eq!(self.head_cylinder, self.geometry.cylinder_of(last));
        ServiceTiming {
            seek,
            rotation,
            transfer,
            overhead: self.overhead,
        }
    }

    /// A lower bound on the service time of *any* operation on this
    /// mechanism: the fixed controller overhead. Seek, rotation, and
    /// transfer only ever add to it. The sharded engine uses this as
    /// its conservative lookahead: a media completion at time `t`
    /// cannot schedule the disk's next completion before
    /// `t + min_service()`.
    pub fn min_service(&self) -> SimDuration {
        self.overhead
    }

    /// Seek distance (cylinders) from the current head position to
    /// `block`, without moving the head.
    pub fn seek_distance_to(&self, block: PhysBlock) -> u32 {
        self.head_cylinder
            .abs_diff(self.geometry.cylinder_of(block))
    }

    /// The closed-form expected service time of a random `nblocks`
    /// operation: average seek + half a revolution + transfer. This is
    /// the `T(r)` the paper uses in its utilization arguments.
    pub fn expected_random_service(&self, nblocks: u32) -> SimDuration {
        let avg_seek =
            SimDuration::from_millis_f64(self.seek.average_seek_ms(self.geometry.cylinders()));
        let avg_rot = self.rotation.average_latency();
        let transfer = SimDuration::for_transfer(
            nblocks as u64 * self.geometry.block_bytes() as u64,
            self.media_rate,
        );
        avg_seek + avg_rot + transfer + self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mech() -> DiskMechanics {
        DiskMechanics::new(&DiskConfig::default())
    }

    #[test]
    fn zero_seek_when_head_on_cylinder() {
        let mut m = mech();
        // First access from cylinder 0 to block 0: no seek.
        let t = m.service(ReadWrite::Read, PhysBlock::new(0), 1, SimTime::ZERO);
        assert_eq!(t.seek, SimDuration::ZERO);
    }

    #[test]
    fn head_moves_to_last_block() {
        let mut m = mech();
        let bpc = m.geometry().blocks_per_cylinder() as u64;
        m.service(ReadWrite::Read, PhysBlock::new(bpc * 10), 1, SimTime::ZERO);
        assert_eq!(m.head_cylinder(), 10);
        // A long read crossing into cylinder 11 leaves the head there.
        let n = m.geometry().blocks_per_cylinder();
        m.service(
            ReadWrite::Read,
            PhysBlock::new(bpc * 10),
            n + 1,
            SimTime::ZERO,
        );
        assert_eq!(m.head_cylinder(), 11);
    }

    #[test]
    fn transfer_scales_with_blocks() {
        let mut m = mech();
        let t1 = m.service(ReadWrite::Read, PhysBlock::new(0), 1, SimTime::ZERO);
        m.set_head_cylinder(0);
        let t32 = m.service(ReadWrite::Read, PhysBlock::new(0), 32, SimTime::ZERO);
        let ratio = t32.transfer.as_nanos() as f64 / t1.transfer.as_nanos() as f64;
        assert!((ratio - 32.0).abs() < 0.01);
    }

    #[test]
    fn rotation_bounded_by_period() {
        let mut m = mech();
        for i in 0..50u64 {
            let now = SimTime::from_nanos(i * 777_777);
            let t = m.service(ReadWrite::Read, PhysBlock::new(i * 12_345), 4, now);
            assert!(t.rotation < m.rotation().period());
        }
    }

    #[test]
    fn expected_service_matches_paper_magnitudes() {
        // T(32 blocks) ≈ 3.4 (seek) + 2.0 (rot) + 2.43 (xfer 128 KB) ms.
        let m = mech();
        let t = m.expected_random_service(32).as_millis_f64();
        assert!((t - 7.85).abs() < 0.5, "T(32) = {t} ms");
        // T(4 blocks) ≈ 3.4 + 2.0 + 0.30 ms: the 29%-utilization-reduction
        // comparison of section 4.
        let t4 = m.expected_random_service(4).as_millis_f64();
        assert!((t4 - 5.73).abs() < 0.5, "T(4) = {t4} ms");
        let reduction = 1.0 - t4 / t;
        assert!(
            (reduction - 0.29).abs() < 0.06,
            "FOR utilization reduction {reduction}"
        );
    }

    #[test]
    fn zoned_recording_speeds_outer_tracks() {
        let mut cfg = DiskConfig::default();
        cfg = cfg.with_zoned_recording();
        let mut m = DiskMechanics::new(&cfg);
        let bpc = m.geometry().blocks_per_cylinder() as u64;
        let cyls = m.geometry().cylinders() as u64;
        let outer = m.service(ReadWrite::Read, PhysBlock::new(0), 32, SimTime::ZERO);
        let inner = m.service(
            ReadWrite::Read,
            PhysBlock::new((cyls - 1) * bpc),
            32,
            SimTime::ZERO,
        );
        assert!(
            outer.transfer < inner.transfer,
            "outer {} should beat inner {}",
            outer.transfer,
            inner.transfer
        );
        // ~1.22 / 0.78 ratio.
        let ratio = inner.transfer.as_nanos() as f64 / outer.transfer.as_nanos() as f64;
        assert!((ratio - 1.22 / 0.78).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "zero blocks")]
    fn zero_block_op_panics() {
        mech().service(ReadWrite::Read, PhysBlock::new(0), 0, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "past end of disk")]
    fn overrun_panics() {
        let mut m = mech();
        let cap = m.geometry().capacity_blocks();
        m.service(ReadWrite::Read, PhysBlock::new(cap - 1), 2, SimTime::ZERO);
    }

    #[test]
    fn seek_distance_query_does_not_move_head() {
        let m = mech();
        let bpc = m.geometry().blocks_per_cylinder() as u64;
        assert_eq!(m.seek_distance_to(PhysBlock::new(bpc * 5)), 5);
        assert_eq!(m.head_cylinder(), 0);
    }
}
