//! The paper's piecewise seek-time model and a least-squares fitter.
//!
//! Section 2.1 of the paper approximates seek time as
//!
//! ```text
//!               ⎧ 0             n = 0
//! seek_time(n) =⎨ α + β·√n      0 < n ≤ θ
//!               ⎩ γ + δ·n       n > θ
//! ```
//!
//! where `n` is the number of cylinders traveled. The constants for the
//! IBM Ultrastar 36Z15 (paper §6.1) are α = 0.9336, β = 0.0364,
//! γ = 1.5503, δ = 0.00054 (milliseconds) and θ = 1150 cylinders.

use crate::time::SimDuration;

/// Piecewise seek-time model (`α + β·√n` for short seeks, `γ + δ·n` for
/// long ones).
///
/// # Example
///
/// ```
/// use forhdc_sim::SeekModel;
///
/// let m = SeekModel::ultrastar_36z15();
/// assert_eq!(m.seek_time(0).as_nanos(), 0);
/// // A one-cylinder seek costs about α + β ≈ 0.97 ms.
/// assert!((m.seek_time(1).as_millis_f64() - 0.97).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekModel {
    alpha_ms: f64,
    beta_ms: f64,
    gamma_ms: f64,
    delta_ms: f64,
    theta: u32,
}

impl SeekModel {
    /// Creates a model from explicit constants (milliseconds and a
    /// cylinder threshold).
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or `theta` is zero.
    pub fn new(alpha_ms: f64, beta_ms: f64, gamma_ms: f64, delta_ms: f64, theta: u32) -> Self {
        assert!(alpha_ms >= 0.0 && beta_ms >= 0.0 && gamma_ms >= 0.0 && delta_ms >= 0.0);
        assert!(theta > 0, "theta must be positive");
        SeekModel {
            alpha_ms,
            beta_ms,
            gamma_ms,
            delta_ms,
            theta,
        }
    }

    /// The constants the paper fits to the IBM Ultrastar 36Z15.
    pub fn ultrastar_36z15() -> Self {
        SeekModel::new(0.9336, 0.0364, 1.5503, 0.00054, 1150)
    }

    /// Seek time for a travel of `n` cylinders.
    pub fn seek_time(&self, n: u32) -> SimDuration {
        SimDuration::from_millis_f64(self.seek_ms(n))
    }

    /// Seek time in fractional milliseconds (the raw model output).
    pub fn seek_ms(&self, n: u32) -> f64 {
        if n == 0 {
            0.0
        } else if n <= self.theta {
            self.alpha_ms + self.beta_ms * (n as f64).sqrt()
        } else {
            self.gamma_ms + self.delta_ms * n as f64
        }
    }

    /// The short-seek intercept α (ms).
    pub fn alpha_ms(&self) -> f64 {
        self.alpha_ms
    }

    /// The short-seek √ coefficient β (ms).
    pub fn beta_ms(&self) -> f64 {
        self.beta_ms
    }

    /// The long-seek intercept γ (ms).
    pub fn gamma_ms(&self) -> f64 {
        self.gamma_ms
    }

    /// The long-seek slope δ (ms per cylinder).
    pub fn delta_ms(&self) -> f64 {
        self.delta_ms
    }

    /// The crossover distance θ (cylinders).
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// Expected seek time for uniformly random start and target cylinders
    /// on a disk of `cylinders` cylinders.
    ///
    /// For independent uniform endpoints, the travel distance `d` has
    /// density `2(C - d) / C²`; this integrates the model against it
    /// (exactly, by summing over all distances).
    pub fn average_seek_ms(&self, cylinders: u32) -> f64 {
        assert!(cylinders > 0);
        let c = cylinders as f64;
        let mut acc = 0.0;
        for d in 1..cylinders {
            let p = 2.0 * (c - d as f64) / (c * c);
            acc += p * self.seek_ms(d);
        }
        acc
    }

    /// Fits model constants to `(distance, seek_ms)` samples by least
    /// squares, given a fixed crossover `theta`.
    ///
    /// Samples at distance ≤ θ fit `α + β·√n`; the rest fit `γ + δ·n`.
    /// A region with fewer than two samples keeps zero coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `theta` is zero.
    pub fn fit_with_theta(samples: &[(u32, f64)], theta: u32) -> Self {
        assert!(!samples.is_empty(), "need samples to fit");
        assert!(theta > 0);
        let short: Vec<(f64, f64)> = samples
            .iter()
            .filter(|&&(n, _)| n > 0 && n <= theta)
            .map(|&(n, t)| ((n as f64).sqrt(), t))
            .collect();
        let long: Vec<(f64, f64)> = samples
            .iter()
            .filter(|&&(n, _)| n > theta)
            .map(|&(n, t)| (n as f64, t))
            .collect();
        let (alpha, beta) = linear_fit(&short).unwrap_or((0.0, 0.0));
        let (gamma, delta) = linear_fit(&long).unwrap_or((0.0, 0.0));
        SeekModel::new(
            alpha.max(0.0),
            beta.max(0.0),
            gamma.max(0.0),
            delta.max(0.0),
            theta,
        )
    }

    /// Fits model constants to samples, searching candidate crossover
    /// points for the θ with the lowest total squared error.
    ///
    /// # Panics
    ///
    /// Panics if `samples` has fewer than four points.
    pub fn fit(samples: &[(u32, f64)]) -> Self {
        assert!(
            samples.len() >= 4,
            "need at least 4 samples to fit a crossover"
        );
        let max_n = samples.iter().map(|&(n, _)| n).max().unwrap();
        let mut best: Option<(f64, SeekModel)> = None;
        // Candidate thetas: each observed distance (other than the max).
        for &(theta, _) in samples {
            if theta == 0 || theta >= max_n {
                continue;
            }
            let model = SeekModel::fit_with_theta(samples, theta);
            let err: f64 = samples
                .iter()
                .map(|&(n, t)| {
                    let e = model.seek_ms(n) - t;
                    e * e
                })
                .sum();
            if best.as_ref().is_none_or(|(b, _)| err < *b) {
                best = Some((err, model));
            }
        }
        best.expect("at least one candidate theta").1
    }
}

impl Default for SeekModel {
    fn default() -> Self {
        SeekModel::ultrastar_36z15()
    }
}

/// Ordinary least squares for `y = a + b·x`. Returns `None` with fewer
/// than two points or a degenerate x spread.
fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(SeekModel::ultrastar_36z15().seek_ms(0), 0.0);
    }

    #[test]
    fn model_is_continuous_at_theta() {
        let m = SeekModel::ultrastar_36z15();
        let at = m.seek_ms(m.theta());
        let after = m.seek_ms(m.theta() + 1);
        assert!(
            (after - at).abs() < 0.05,
            "discontinuity at theta: {at} vs {after}"
        );
    }

    #[test]
    fn model_is_monotonic() {
        let m = SeekModel::ultrastar_36z15();
        let mut prev = 0.0;
        for n in 1..5000 {
            let t = m.seek_ms(n);
            assert!(t >= prev, "seek time decreased at {n}");
            prev = t;
        }
    }

    #[test]
    fn average_seek_matches_nominal_3_4ms() {
        // Table 1: average seek 3.4 ms on the ~10k-cylinder geometry.
        let m = SeekModel::ultrastar_36z15();
        let avg = m.average_seek_ms(9_988);
        assert!(
            (avg - 3.4).abs() < 0.35,
            "average seek {avg} far from nominal 3.4 ms"
        );
    }

    #[test]
    fn fit_recovers_known_constants() {
        let truth = SeekModel::ultrastar_36z15();
        let samples: Vec<(u32, f64)> = (1..40)
            .map(|i| {
                let n = i * 250; // spans both regions (theta = 1150)
                (n, truth.seek_ms(n))
            })
            .collect();
        let fitted = SeekModel::fit(&samples);
        for n in [1u32, 100, 500, 1150, 2000, 8000] {
            let err = (fitted.seek_ms(n) - truth.seek_ms(n)).abs();
            assert!(err < 0.08, "fit error {err} at n={n}");
        }
    }

    #[test]
    fn fit_with_theta_handles_one_region() {
        // All samples short: the long region stays zeroed.
        let truth = SeekModel::ultrastar_36z15();
        let samples: Vec<(u32, f64)> = (1..20).map(|n| (n * 10, truth.seek_ms(n * 10))).collect();
        let fitted = SeekModel::fit_with_theta(&samples, 1150);
        assert!((fitted.alpha_ms() - truth.alpha_ms()).abs() < 0.05);
        assert_eq!(fitted.gamma_ms(), 0.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 + 3.0 * i as f64)).collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 2.0).abs() < 1e-9);
        assert!((b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_is_none() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }
}
