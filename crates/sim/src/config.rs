//! Typed configuration mirroring Table 1 of the paper.
//!
//! | Parameter | Default |
//! |---|---|
//! | Number of disks | 8 |
//! | Disk size | 18 GBytes |
//! | Average disk seek time | 3.4 msecs |
//! | Average rotational latency | 2.0 msecs (15 000 rpm) |
//! | Raw disk transfer rate | 54 MB/sec |
//! | Disk controller interface | Ultra160 (160 MB/s shared bus) |
//! | Disk controller cache size | 4 MBytes |
//! | Disk block size | 4 KBytes |
//! | Segment size | 128, 256, or 512 KBytes |
//! | Number of segments | 27, 13, or 6 |
//! | Disk-resident bitmap | 546 KBytes (1 bit / 4-KByte block) |

use crate::geometry::DiskGeometry;
use crate::seek::SeekModel;
use crate::time::SimDuration;

/// Which per-disk request scheduler to use.
///
/// The paper's controllers use LOOK; the others exist for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Elevator without going to the edge (the paper's default).
    #[default]
    Look,
    /// First-come first-served.
    Fcfs,
    /// Shortest seek time first.
    Sstf,
    /// Circular LOOK (one direction only, then jump back).
    Clook,
}

/// How mirrored reads are split across the two members of a pair.
///
/// The default reproduces the original closest-copy dispatch ("accessing
/// the closest copy", §2.2): a member that already caches the extent
/// wins, else the less-loaded one. The alternatives are the classic
/// read-splitting policies of the mirrored-array literature (Thomasian),
/// swept by `fig-mirror`. Only consulted when `ArrayConfig::mirrored`
/// is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadSplit {
    /// Cache-affinity first, then least-loaded (the original policy).
    #[default]
    ClosestCopy,
    /// Strict alternation per virtual disk, ignoring load.
    RoundRobin,
    /// The member with the shorter queue (ties go to the primary).
    ShortestQueue,
    /// All reads to the even member; the replica only absorbs writes
    /// (and failovers).
    PrimaryOnly,
}

impl ReadSplit {
    /// Stable CLI/CSV label.
    pub fn label(&self) -> &'static str {
        match self {
            ReadSplit::ClosestCopy => "closest",
            ReadSplit::RoundRobin => "rr",
            ReadSplit::ShortestQueue => "sq",
            ReadSplit::PrimaryOnly => "primary",
        }
    }
}

/// Configuration of a single disk drive and its controller resources.
///
/// Defaults model the IBM Ultrastar 36Z15 of Table 1.
///
/// # Example
///
/// ```
/// use forhdc_sim::DiskConfig;
///
/// let cfg = DiskConfig::default();
/// assert_eq!(cfg.cache_blocks(), 1024);       // 4 MB of 4-KByte blocks
/// assert_eq!(cfg.segment_blocks(), 32);       // 128-KByte segments
/// assert_eq!(cfg.segments, 27);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Platter geometry.
    pub geometry: DiskGeometry,
    /// Seek-time model.
    pub seek: SeekModel,
    /// Spindle speed, revolutions per minute.
    pub rpm: u32,
    /// Raw media transfer rate in bytes per second (Table 1: 54 MB/s).
    pub media_rate: u64,
    /// Controller cache memory in bytes (Table 1: 4 MBytes).
    pub cache_bytes: u64,
    /// Segment size in bytes for the segment-based organization
    /// (Table 1: 128 KBytes default).
    pub segment_bytes: u32,
    /// Number of segments for the segment-based organization
    /// (Table 1: 27 at 128-KByte segments).
    pub segments: u32,
    /// Fixed controller processing overhead charged per media operation
    /// (command decode, cache management).
    pub controller_overhead: SimDuration,
    /// Extra controller time per block of FOR bitmap consulted — the
    /// "cost of the new proposed functionality" the paper simulates.
    pub bitmap_scan_per_block: SimDuration,
    /// Optional zoned-recording profile: a per-cylinder scale on the
    /// media rate (`None` = the paper's uniform average rate).
    pub zone_profile: Option<crate::zones::ZoneProfile>,
}

impl DiskConfig {
    /// Block size in bytes (from the geometry).
    pub fn block_bytes(&self) -> u32 {
        self.geometry.block_bytes()
    }

    /// Controller cache capacity in blocks.
    pub fn cache_blocks(&self) -> u32 {
        (self.cache_bytes / self.block_bytes() as u64) as u32
    }

    /// Segment size in blocks.
    pub fn segment_blocks(&self) -> u32 {
        self.segment_bytes / self.block_bytes()
    }

    /// Sets the segment size, also updating the segment count to the
    /// Table 1 pairing (128 KB → 27, 256 KB → 13, 512 KB → 6; other
    /// sizes get `cache_bytes / segment_bytes` capped segments).
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is zero or not a multiple of the block
    /// size.
    pub fn with_segment_bytes(mut self, segment_bytes: u32) -> Self {
        assert!(segment_bytes > 0 && segment_bytes.is_multiple_of(self.block_bytes()));
        self.segment_bytes = segment_bytes;
        self.segments = match segment_bytes {
            131_072 => 27,
            262_144 => 13,
            524_288 => 6,
            other => (self.cache_bytes / other as u64).max(1) as u32,
        };
        self
    }

    /// Enables the Ultrastar-like 9-zone recording profile.
    pub fn with_zoned_recording(mut self) -> Self {
        self.zone_profile = Some(crate::zones::ZoneProfile::ultrastar_like(
            self.geometry.cylinders(),
        ));
        self
    }

    /// Size in bytes of the on-disk FOR continuation bitmap (1 bit per
    /// block). Table 1 lists 546 KBytes for the 18-GByte drive.
    pub fn bitmap_bytes(&self) -> u64 {
        self.geometry.capacity_blocks().div_ceil(8)
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            geometry: DiskGeometry::ultrastar_36z15(),
            seek: SeekModel::ultrastar_36z15(),
            rpm: 15_000,
            media_rate: 54_000_000,
            cache_bytes: 4 * 1024 * 1024,
            segment_bytes: 128 * 1024,
            segments: 27,
            controller_overhead: SimDuration::from_micros(20),
            bitmap_scan_per_block: SimDuration::from_nanos(50),
            zone_profile: None,
        }
    }
}

/// Configuration of the whole array: disks, striping, bus, scheduling.
///
/// # Example
///
/// ```
/// use forhdc_sim::ArrayConfig;
///
/// let cfg = ArrayConfig::default();
/// assert_eq!(cfg.disks, 8);
/// assert_eq!(cfg.striping_unit_blocks(), 32); // 128-KByte unit
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayConfig {
    /// Number of disks (Table 1: 8).
    pub disks: u16,
    /// Per-disk configuration.
    pub disk: DiskConfig,
    /// Striping unit in bytes (Table 1 synthetic default: 128 KBytes).
    pub striping_unit_bytes: u32,
    /// Per-disk request scheduler.
    pub scheduler: SchedulerKind,
    /// Shared host bus bandwidth in bytes per second (Ultra160: 160 MB/s).
    pub bus_rate: u64,
    /// Fixed bus/command overhead per transfer.
    pub bus_overhead: SimDuration,
    /// RAID-1 mirroring (RAID-10): adjacent disk pairs hold identical
    /// data; the logical space stripes over the pairs. Reads may be
    /// served by either member ("accessing the closest copy"); writes
    /// go to both. Requires an even disk count.
    pub mirrored: bool,
    /// Read-splitting policy for mirrored pairs (ignored unless
    /// `mirrored`).
    pub read_split: ReadSplit,
}

impl ArrayConfig {
    /// Striping unit in blocks.
    pub fn striping_unit_blocks(&self) -> u32 {
        self.striping_unit_bytes / self.disk.block_bytes()
    }

    /// Sets the striping unit (bytes), builder style.
    ///
    /// # Panics
    ///
    /// Panics if the unit is zero or not a multiple of the block size.
    pub fn with_striping_unit_bytes(mut self, unit: u32) -> Self {
        assert!(unit > 0 && unit.is_multiple_of(self.disk.block_bytes()));
        self.striping_unit_bytes = unit;
        self
    }

    /// Number of independently addressable (virtual) disks: the disk
    /// count, halved under mirroring.
    ///
    /// # Panics
    ///
    /// Panics if mirroring is enabled with an odd disk count.
    pub fn virtual_disks(&self) -> u16 {
        if self.mirrored {
            assert!(
                self.disks.is_multiple_of(2) && self.disks >= 2,
                "mirroring needs disk pairs"
            );
            self.disks / 2
        } else {
            self.disks
        }
    }

    /// Total controller cache across the array, in blocks.
    pub fn total_cache_blocks(&self) -> u64 {
        self.disks as u64 * self.disk.cache_blocks() as u64
    }

    /// Total logical capacity of the array in blocks (halved under
    /// mirroring: every block is stored twice).
    pub fn capacity_blocks(&self) -> u64 {
        self.virtual_disks() as u64 * self.disk.geometry.capacity_blocks()
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            disks: 8,
            disk: DiskConfig::default(),
            striping_unit_bytes: 128 * 1024,
            scheduler: SchedulerKind::Look,
            bus_rate: 160_000_000,
            bus_overhead: SimDuration::from_micros(20),
            mirrored: false,
            read_split: ReadSplit::ClosestCopy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let a = ArrayConfig::default();
        assert_eq!(a.disks, 8);
        assert_eq!(a.disk.block_bytes(), 4096);
        assert_eq!(a.disk.cache_bytes, 4 * 1024 * 1024);
        assert_eq!(a.disk.media_rate, 54_000_000);
        assert_eq!(a.disk.segments, 27);
        assert_eq!(a.striping_unit_bytes, 128 * 1024);
        assert!(a.disk.geometry.capacity_bytes() >= 18_000_000_000);
    }

    #[test]
    fn bitmap_size_matches_table1() {
        let d = DiskConfig::default();
        // Table 1: 546 KBytes. 18 GB / 4 KB / 8 bits = ~549 KB; allow slack
        // for geometry rounding.
        let kb = d.bitmap_bytes() as f64 / 1024.0;
        assert!((530.0..560.0).contains(&kb), "bitmap {kb} KB");
    }

    #[test]
    fn segment_size_pairing() {
        let d = DiskConfig::default();
        assert_eq!(d.clone().with_segment_bytes(256 * 1024).segments, 13);
        assert_eq!(d.clone().with_segment_bytes(512 * 1024).segments, 6);
        assert_eq!(d.clone().with_segment_bytes(64 * 1024).segments, 64);
        assert_eq!(d.with_segment_bytes(128 * 1024).segments, 27);
    }

    #[test]
    fn striping_builder() {
        let a = ArrayConfig::default().with_striping_unit_bytes(16 * 1024);
        assert_eq!(a.striping_unit_blocks(), 4);
        assert_eq!(a.total_cache_blocks(), 8 * 1024);
    }

    #[test]
    fn mirroring_halves_addressable_space() {
        let mut a = ArrayConfig::default();
        assert_eq!(a.virtual_disks(), 8);
        let full = a.capacity_blocks();
        a.mirrored = true;
        assert_eq!(a.virtual_disks(), 4);
        assert_eq!(a.capacity_blocks(), full / 2);
    }

    #[test]
    #[should_panic(expected = "disk pairs")]
    fn odd_mirroring_panics() {
        let a = ArrayConfig {
            disks: 7,
            mirrored: true,
            ..ArrayConfig::default()
        };
        let _ = a.virtual_disks();
    }

    #[test]
    #[should_panic]
    fn bad_striping_unit_panics() {
        let _ = ArrayConfig::default().with_striping_unit_bytes(1000);
    }
}
