//! Round-robin striping of the logical block space over the array.
//!
//! Logical blocks are grouped into fixed-size striping units laid out
//! across the `D` physical disks in round-robin fashion (section 2.2 of
//! the paper). Smaller units balance load better; units larger than a
//! file keep each file on one disk.

use crate::request::{DiskExtent, DiskId, LogicalBlock, PhysBlock};

/// The logical→physical striping map.
///
/// # Example
///
/// ```
/// use forhdc_sim::StripingMap;
/// use forhdc_sim::request::LogicalBlock;
///
/// // 4 disks, 2-block units.
/// let map = StripingMap::new(4, 2);
/// let (disk, phys) = map.locate(LogicalBlock::new(5));
/// assert_eq!(disk.index(), 2);       // unit 2 lives on disk 2
/// assert_eq!(phys.index(), 1);       // second block of that unit
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripingMap {
    disks: u16,
    unit_blocks: u32,
    /// `log2(unit_blocks)` when the unit is a power of two (every
    /// paper configuration is), else `u8::MAX`. The issue path calls
    /// [`StripingMap::locate`] for every request; shifts replace four
    /// hardware divisions.
    unit_shift: u8,
    /// `log2(disks)` when the disk count is a power of two, else
    /// `u8::MAX`.
    disk_shift: u8,
}

#[inline]
fn shift_of(v: u64) -> u8 {
    if v.is_power_of_two() {
        v.trailing_zeros() as u8
    } else {
        u8::MAX
    }
}

impl StripingMap {
    /// Creates a map over `disks` disks with `unit_blocks`-block units.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(disks: u16, unit_blocks: u32) -> Self {
        assert!(disks > 0, "need at least one disk");
        assert!(unit_blocks > 0, "striping unit must be positive");
        StripingMap {
            disks,
            unit_blocks,
            unit_shift: shift_of(unit_blocks as u64),
            disk_shift: shift_of(disks as u64),
        }
    }

    /// `(index / unit_blocks, index % unit_blocks)` without divisions
    /// for power-of-two units.
    #[inline]
    fn split_unit(&self, index: u64) -> (u64, u64) {
        if self.unit_shift != u8::MAX {
            (
                index >> self.unit_shift,
                index & (self.unit_blocks as u64 - 1),
            )
        } else {
            (
                index / self.unit_blocks as u64,
                index % self.unit_blocks as u64,
            )
        }
    }

    /// `(unit % disks, unit / disks)` without divisions for
    /// power-of-two disk counts.
    #[inline]
    fn split_disk(&self, unit: u64) -> (u16, u64) {
        if self.disk_shift != u8::MAX {
            (
                (unit & (self.disks as u64 - 1)) as u16,
                unit >> self.disk_shift,
            )
        } else {
            ((unit % self.disks as u64) as u16, unit / self.disks as u64)
        }
    }

    /// Number of disks in the array.
    pub fn disks(&self) -> u16 {
        self.disks
    }

    /// Striping unit in blocks.
    pub fn unit_blocks(&self) -> u32 {
        self.unit_blocks
    }

    /// Maps a logical block to `(disk, physical block)`.
    pub fn locate(&self, block: LogicalBlock) -> (DiskId, PhysBlock) {
        let (unit, within) = self.split_unit(block.index());
        let (disk, disk_unit) = self.split_disk(unit);
        (
            DiskId::new(disk),
            PhysBlock::new(disk_unit * self.unit_blocks as u64 + within),
        )
    }

    /// Inverse of [`StripingMap::locate`].
    pub fn logical_of(&self, disk: DiskId, phys: PhysBlock) -> LogicalBlock {
        let (disk_unit, within) = self.split_unit(phys.index());
        let unit = disk_unit * self.disks as u64 + disk.index() as u64;
        LogicalBlock::new(unit * self.unit_blocks as u64 + within)
    }

    /// Splits a logical extent into per-disk physical extents, merging
    /// the pieces that land contiguously on the same disk.
    ///
    /// The returned extents are in logical order; a request touching
    /// more than `disks` units wraps around and produces merged extents
    /// (contiguous on disk because round-robin units on one disk are
    /// physically adjacent).
    ///
    /// # Panics
    ///
    /// Panics if `nblocks` is zero.
    pub fn split(&self, start: LogicalBlock, nblocks: u32) -> Vec<DiskExtent> {
        let mut out = Vec::new();
        self.split_into(start, nblocks, &mut out);
        out
    }

    /// [`StripingMap::split`] into a caller-owned buffer, clearing it
    /// first — the issue path reuses one buffer per run instead of
    /// allocating per request.
    ///
    /// # Panics
    ///
    /// Panics if `nblocks` is zero.
    pub fn split_into(&self, start: LogicalBlock, nblocks: u32, out: &mut Vec<DiskExtent>) {
        assert!(nblocks > 0, "cannot split an empty extent");
        out.clear();
        let mut remaining = nblocks as u64;
        let mut cursor = start;
        while remaining > 0 {
            let (disk, phys) = self.locate(cursor);
            let (_, within) = self.split_unit(cursor.index());
            let chunk = (self.unit_blocks as u64 - within).min(remaining) as u32;
            // Merge with an earlier extent on the same disk if physically
            // adjacent (happens when the request wraps the whole stripe).
            if let Some(prev) = out.iter_mut().find(|e| e.disk == disk && e.end() == phys) {
                prev.nblocks += chunk;
            } else {
                out.push(DiskExtent {
                    disk,
                    start: phys,
                    nblocks: chunk,
                });
            }
            cursor = cursor.offset(chunk as u64);
            remaining -= chunk as u64;
        }
    }

    /// Number of distinct disks a logical extent touches.
    pub fn fan_out(&self, start: LogicalBlock, nblocks: u32) -> usize {
        let mut disks: Vec<DiskId> = self.split(start, nblocks).iter().map(|e| e.disk).collect();
        disks.sort();
        disks.dedup();
        disks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_round_robin() {
        let m = StripingMap::new(3, 4);
        // Units: [0..4) -> d0, [4..8) -> d1, [8..12) -> d2, [12..16) -> d0 ...
        assert_eq!(
            m.locate(LogicalBlock::new(0)),
            (DiskId::new(0), PhysBlock::new(0))
        );
        assert_eq!(
            m.locate(LogicalBlock::new(4)),
            (DiskId::new(1), PhysBlock::new(0))
        );
        assert_eq!(
            m.locate(LogicalBlock::new(8)),
            (DiskId::new(2), PhysBlock::new(0))
        );
        assert_eq!(
            m.locate(LogicalBlock::new(12)),
            (DiskId::new(0), PhysBlock::new(4))
        );
        assert_eq!(
            m.locate(LogicalBlock::new(14)),
            (DiskId::new(0), PhysBlock::new(6))
        );
    }

    #[test]
    fn locate_roundtrips_via_logical_of() {
        let m = StripingMap::new(8, 32);
        for i in 0..10_000u64 {
            let l = LogicalBlock::new(i * 7 + 3);
            let (d, p) = m.locate(l);
            assert_eq!(m.logical_of(d, p), l);
        }
    }

    #[test]
    fn split_within_one_unit() {
        let m = StripingMap::new(4, 8);
        let parts = m.split(LogicalBlock::new(2), 4);
        assert_eq!(
            parts,
            vec![DiskExtent {
                disk: DiskId::new(0),
                start: PhysBlock::new(2),
                nblocks: 4,
            }]
        );
    }

    #[test]
    fn split_across_units() {
        let m = StripingMap::new(4, 8);
        // Blocks 6..14: last 2 of unit 0 (disk 0) + first 6 of unit 1 (disk 1).
        let parts = m.split(LogicalBlock::new(6), 8);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].disk, DiskId::new(0));
        assert_eq!(parts[0].nblocks, 2);
        assert_eq!(parts[1].disk, DiskId::new(1));
        assert_eq!(parts[1].start, PhysBlock::new(0));
        assert_eq!(parts[1].nblocks, 6);
    }

    #[test]
    fn split_wrapping_whole_stripe_merges() {
        let m = StripingMap::new(2, 4);
        // 16 blocks over 2 disks with 4-block units: each disk gets two
        // physically adjacent units, merged into one 8-block extent.
        let parts = m.split(LogicalBlock::new(0), 16);
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.nblocks, 8);
            assert_eq!(p.start, PhysBlock::new(0));
        }
    }

    #[test]
    fn split_conserves_blocks() {
        let m = StripingMap::new(8, 32);
        for n in [1u32, 5, 32, 100, 300] {
            let parts = m.split(LogicalBlock::new(12345), n);
            let total: u32 = parts.iter().map(|e| e.nblocks).sum();
            assert_eq!(total, n);
        }
    }

    #[test]
    fn fan_out_counts_disks() {
        let m = StripingMap::new(4, 8);
        assert_eq!(m.fan_out(LogicalBlock::new(0), 8), 1);
        assert_eq!(m.fan_out(LogicalBlock::new(0), 9), 2);
        assert_eq!(m.fan_out(LogicalBlock::new(0), 32), 4);
        assert_eq!(m.fan_out(LogicalBlock::new(0), 64), 4); // wraps
    }

    #[test]
    #[should_panic(expected = "empty extent")]
    fn split_zero_panics() {
        StripingMap::new(2, 4).split(LogicalBlock::new(0), 0);
    }
}
