//! A sharded event calendar: per-lane FIFO queues plus a fallback heap,
//! popping in exactly the order of [`crate::engine::EventQueue`].
//!
//! The full-system simulation schedules almost every event into a
//! stream whose firing times are non-decreasing on their own: each
//! disk has at most one media completion outstanding, bus grants end
//! in reservation order, and the periodic flush/sample ticks march
//! forward. A binary heap pays `O(log n)` sift churn to rediscover
//! that structure on every operation; the calendar instead gives each
//! such stream its own *lane* — an append-only FIFO — and keeps a
//! struct-of-arrays table of lane head keys so a pop is one linear
//! scan over a handful of `(time, seq)` pairs. Events that do not fit
//! any lane (fault retries, recovery wake-ups), or that would violate
//! a lane's monotonicity (a failure completing out of order), fall
//! back to a small binary heap that participates in the same scan.
//!
//! Determinism is preserved *by construction*, not by convention: a
//! global sequence number is assigned at schedule time exactly as the
//! heap-based queue does, and the pop picks the minimum `(time, seq)`
//! over all lane heads and the heap top. Within a lane both time and
//! sequence are non-decreasing, so the head is the lane's minimum and
//! the scan finds the global one — the pop order is bit-for-bit the
//! heap's order for any assignment of events to lanes (property-tested
//! against [`crate::engine::EventQueue`]).
//!
//! The lanes are also the seam the sharded engine parallelizes along:
//! lane `d` *is* disk `d`'s media timeline, so the conservative window
//! protocol (DESIGN.md §6.7) reads lane heads directly to find which
//! disks may advance independently.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::engine::Fired;
use crate::time::SimTime;

/// Lane-head key: time in nanoseconds in the high 64 bits, sequence
/// number in the low 64 — one branchless `u128` compare orders by
/// `(time, seq)`. `EMPTY` is greater than any real key so empty lanes
/// lose every comparison.
const EMPTY: u128 = u128::MAX;

#[inline]
const fn key_of(time_ns: u64, seq: u64) -> u128 {
    ((time_ns as u128) << 64) | seq as u128
}

#[inline]
const fn time_of(key: u128) -> u64 {
    (key >> 64) as u64
}

#[inline]
const fn seq_of(key: u128) -> u64 {
    key as u64
}

#[derive(Debug)]
struct HeapEntry<E> {
    key: u128,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A deterministic future-event calendar with per-lane FIFO fast
/// paths. Drop-in replacement for [`crate::engine::EventQueue`] where
/// the caller can name a monotonic stream for most events.
///
/// # Example
///
/// ```
/// use forhdc_sim::calendar::LaneCalendar;
/// use forhdc_sim::SimTime;
///
/// let mut c = LaneCalendar::with_lanes(2);
/// c.schedule_lane(0, SimTime::from_nanos(20), "disk0");
/// c.schedule_lane(1, SimTime::from_nanos(10), "disk1");
/// c.schedule(SimTime::from_nanos(15), "retry");
/// assert_eq!(c.pop().unwrap().event, "disk1");
/// assert_eq!(c.pop().unwrap().event, "retry");
/// assert_eq!(c.pop().unwrap().event, "disk0");
/// assert!(c.pop().is_none());
/// ```
#[derive(Debug)]
pub struct LaneCalendar<E> {
    /// `heads[l]` mirrors the key of lane `l`'s front entry; the last
    /// slot mirrors the heap top. Kept densely packed so a pop is one
    /// linear scan of a few cache lines, not a pointer chase.
    heads: Vec<u128>,
    /// Struct-of-arrays lane storage: `slots[l]` holds the head entry
    /// in place. Most lanes never hold more than one pending event (a
    /// disk has one media completion in flight, the periodic ticks
    /// re-arm themselves), so the common case touches no ring buffer;
    /// a lane that genuinely queues spills into `overflow[l]`.
    slots: Vec<Option<(u128, E)>>,
    overflow: Vec<VecDeque<(u128, E)>>,
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    seq: u64,
    now: SimTime,
    len: usize,
}

impl<E> LaneCalendar<E> {
    /// Creates an empty calendar with `lanes` FIFO lanes (and the
    /// implicit fallback heap), clock at [`SimTime::ZERO`].
    pub fn with_lanes(lanes: usize) -> Self {
        LaneCalendar {
            heads: vec![EMPTY; lanes + 1],
            slots: (0..lanes).map(|_| None).collect(),
            overflow: (0..lanes).map(|_| VecDeque::new()).collect(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            // lane entries + heap entries together
            len: 0,
        }
    }

    /// Number of FIFO lanes (the fallback heap is not a lane).
    pub fn lanes(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn heap_slot(&self) -> usize {
        self.heads.len() - 1
    }

    fn assert_future(&self, time: SimTime) {
        assert!(
            time >= self.now,
            "scheduled event in the past: {time} < now {}",
            self.now
        );
    }

    #[inline]
    fn push_heap(&mut self, key: u128, event: E) {
        self.heap.push(Reverse(HeapEntry { key, event }));
        let slot = self.heap_slot();
        if key < self.heads[slot] {
            self.heads[slot] = key;
        }
    }

    /// Schedules `event` at `time` with no lane affinity (fallback
    /// heap). Exactly [`crate::engine::EventQueue::schedule`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.assert_future(time);
        let key = key_of(time.as_nanos(), self.seq);
        self.seq += 1;
        self.len += 1;
        self.push_heap(key, event);
    }

    /// Schedules `event` at `time` on `lane`. If `time` would fire
    /// before the lane's current tail the event silently falls back to
    /// the heap — the pop order is identical either way, the lane is
    /// purely a fast path.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock, or `lane`
    /// is out of range.
    pub fn schedule_lane(&mut self, lane: usize, time: SimTime, event: E) {
        self.assert_future(time);
        let key = key_of(time.as_nanos(), self.seq);
        self.seq += 1;
        self.len += 1;
        match &self.slots[lane] {
            None => {
                debug_assert!(self.overflow[lane].is_empty());
                self.slots[lane] = Some((key, event));
                self.heads[lane] = key;
            }
            Some(_) => {
                // Monotone within the lane? The tail is the overflow
                // back, else the slot itself.
                let tail = self.overflow[lane]
                    .back()
                    .map_or_else(|| self.slots[lane].as_ref().expect("occupied").0, |t| t.0);
                if key < tail {
                    self.push_heap(key, event);
                } else {
                    self.overflow[lane].push_back((key, event));
                }
            }
        }
    }

    /// Index of the pending minimum in `heads`, or `None` when empty.
    #[inline]
    fn argmin(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut best = 0;
        let mut best_key = self.heads[0];
        for (i, &key) in self.heads.iter().enumerate().skip(1) {
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        Some(best)
    }

    /// Removes and returns the earliest event, advancing the clock to
    /// its firing time. Bit-for-bit the order of
    /// [`crate::engine::EventQueue::pop`].
    pub fn pop(&mut self) -> Option<Fired<E>> {
        let slot = self.argmin()?;
        self.len -= 1;
        let (key, event) = if slot == self.heap_slot() {
            let Reverse(entry) = self.heap.pop().expect("head mirrors a heap entry");
            self.heads[slot] = self.heap.peek().map_or(EMPTY, |Reverse(e)| e.key);
            (entry.key, entry.event)
        } else {
            let (key, event) = self.slots[slot].take().expect("head mirrors an entry");
            match self.overflow[slot].pop_front() {
                Some(next) => {
                    self.heads[slot] = next.0;
                    self.slots[slot] = Some(next);
                }
                None => self.heads[slot] = EMPTY,
            }
            (key, event)
        };
        self.now = SimTime::from_nanos(time_of(key));
        Some(Fired {
            time: self.now,
            event,
        })
    }

    /// The `(time, lane)` of the earliest pending event — `lane` is
    /// `None` for a heap (non-lane) event. Does not advance the clock.
    /// The sharded engine's window gather reads this to decide whether
    /// the next event is a disk-lane event it may batch.
    pub fn peek_source(&self) -> Option<(SimTime, Option<usize>)> {
        let slot = self.argmin()?;
        let t = time_of(self.heads[slot]);
        let lane = if slot == self.heap_slot() {
            None
        } else {
            Some(slot)
        };
        Some((SimTime::from_nanos(t), lane))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_source().map(|(t, _)| t)
    }

    /// The firing time of lane `l`'s head entry, if any.
    pub fn peek_lane(&self, lane: usize) -> Option<SimTime> {
        let key = self.heads[lane];
        (key != EMPTY).then(|| SimTime::from_nanos(time_of(key)))
    }

    /// The earliest pending `(time, seq)` *excluding* lanes
    /// `0..first_excluded` — the host-event horizon the conservative
    /// window protocol bounds disk-lane batches by.
    pub fn horizon_excluding(&self, first_excluded: usize) -> Option<(SimTime, u64)> {
        self.heads[first_excluded..]
            .iter()
            .copied()
            .filter(|&k| k != EMPTY)
            .min()
            .map(|k| (SimTime::from_nanos(time_of(k)), seq_of(k)))
    }

    /// The current simulated time: the firing time of the most
    /// recently popped event, or [`SimTime::ZERO`] before any pop.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_across_lanes_and_heap() {
        let mut c = LaneCalendar::with_lanes(2);
        c.schedule_lane(0, SimTime::from_nanos(30), 3);
        c.schedule_lane(1, SimTime::from_nanos(10), 1);
        c.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| c.pop().map(|f| f.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_schedule_order_regardless_of_lane() {
        let mut c = LaneCalendar::with_lanes(3);
        for i in 0..99 {
            match i % 4 {
                0 => c.schedule_lane(0, SimTime::from_nanos(5), i),
                1 => c.schedule_lane(1, SimTime::from_nanos(5), i),
                2 => c.schedule_lane(2, SimTime::from_nanos(5), i),
                _ => c.schedule(SimTime::from_nanos(5), i),
            }
        }
        let order: Vec<i32> = std::iter::from_fn(|| c.pop().map(|f| f.event)).collect();
        assert_eq!(order, (0..99).collect::<Vec<_>>());
    }

    #[test]
    fn non_monotonic_lane_push_falls_back_to_heap() {
        let mut c = LaneCalendar::with_lanes(1);
        c.schedule_lane(0, SimTime::from_nanos(50), "tail");
        // Earlier than the lane tail: must not be appended after it.
        c.schedule_lane(0, SimTime::from_nanos(10), "early");
        assert_eq!(c.len(), 2);
        assert_eq!(c.pop().unwrap().event, "early");
        assert_eq!(c.pop().unwrap().event, "tail");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut c = LaneCalendar::with_lanes(1);
        assert_eq!(c.now(), SimTime::ZERO);
        c.schedule_lane(0, SimTime::from_nanos(7), ());
        c.pop();
        assert_eq!(c.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut c = LaneCalendar::with_lanes(1);
        c.schedule_lane(0, SimTime::from_nanos(10), ());
        c.pop();
        c.schedule_lane(0, SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_source_identifies_lane_vs_heap() {
        let mut c = LaneCalendar::with_lanes(2);
        c.schedule_lane(1, SimTime::from_nanos(9), ());
        assert_eq!(c.peek_source(), Some((SimTime::from_nanos(9), Some(1))));
        c.schedule(SimTime::from_nanos(3), ());
        assert_eq!(c.peek_source(), Some((SimTime::from_nanos(3), None)));
        assert_eq!(c.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(c.peek_lane(1), Some(SimTime::from_nanos(9)));
        assert_eq!(c.peek_lane(0), None);
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn horizon_excludes_disk_lanes() {
        let mut c = LaneCalendar::with_lanes(3);
        c.schedule_lane(0, SimTime::from_nanos(5), ()); // disk lane
        c.schedule_lane(2, SimTime::from_nanos(12), ()); // host lane
        c.schedule(SimTime::from_nanos(20), ());
        // Horizon over lanes >= 2 plus the heap ignores the disk lane.
        assert_eq!(c.horizon_excluding(2), Some((SimTime::from_nanos(12), 1)));
        assert_eq!(c.horizon_excluding(3), Some((SimTime::from_nanos(20), 2)));
        c.pop();
        c.pop();
        c.pop();
        assert_eq!(c.horizon_excluding(0), None);
    }
}
