//! Core identifier and request newtypes shared across the simulator.
//!
//! The simulator distinguishes *logical* blocks (the array-wide address
//! space the host file system sees, before striping) from *physical*
//! blocks (per-disk addresses after striping). Mixing the two is a
//! classic source of simulator bugs, so they are separate newtypes.

use std::fmt;

/// A block address in the host-visible, array-wide logical space
/// (before striping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalBlock(u64);

/// A block address on one physical disk (after striping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysBlock(u64);

/// Index of a disk within the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DiskId(u16);

/// Identifier of a concurrent host I/O stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(u32);

/// Identifier of a host-level request (one trace record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(u64);

/// Whether an access reads or writes the media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadWrite {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

impl ReadWrite {
    /// Returns `true` for [`ReadWrite::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, ReadWrite::Read)
    }

    /// Returns `true` for [`ReadWrite::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, ReadWrite::Write)
    }
}

macro_rules! impl_block_newtype {
    ($name:ident, $tag:literal) => {
        impl $name {
            /// Creates the identifier from its raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn index(self) -> u64 {
                self.0
            }

            /// The address `n` blocks after this one.
            pub const fn offset(self, n: u64) -> Self {
                $name(self.0 + n)
            }

            /// Blocks between `self` and `earlier` (`self - earlier`).
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `earlier > self`.
            pub fn distance_from(self, earlier: Self) -> u64 {
                debug_assert!(earlier.0 <= self.0);
                self.0 - earlier.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

impl_block_newtype!(LogicalBlock, "L");
impl_block_newtype!(PhysBlock, "P");

impl DiskId {
    /// Creates a disk id from its raw index.
    pub const fn new(raw: u16) -> Self {
        DiskId(raw)
    }

    /// Returns the raw index.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the raw index widened to `usize` (for array indexing).
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl StreamId {
    /// Creates a stream id from its raw index.
    pub const fn new(raw: u32) -> Self {
        StreamId(raw)
    }

    /// Returns the raw index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the raw index widened to `usize` (for array indexing).
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl RequestId {
    /// Creates a request id from its raw index.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// Returns the raw index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disk{}", self.0)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A contiguous extent of physical blocks on one disk.
///
/// Produced by [`crate::StripingMap::split`] when a logical request is
/// scattered over the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskExtent {
    /// Which disk the extent lives on.
    pub disk: DiskId,
    /// First physical block of the extent.
    pub start: PhysBlock,
    /// Number of blocks in the extent.
    pub nblocks: u32,
}

impl DiskExtent {
    /// One-past-the-end physical block.
    pub fn end(&self) -> PhysBlock {
        self.start.offset(self.nblocks as u64)
    }

    /// Iterates over the physical blocks of the extent.
    pub fn blocks(&self) -> impl Iterator<Item = PhysBlock> + '_ {
        (0..self.nblocks as u64).map(move |i| self.start.offset(i))
    }
}

impl fmt::Display for DiskExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}..+{}]", self.disk, self.start, self.nblocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_distinct_and_ordered() {
        let a = LogicalBlock::new(1);
        let b = LogicalBlock::new(2);
        assert!(a < b);
        assert_eq!(b.distance_from(a), 1);
        assert_eq!(a.offset(4), LogicalBlock::new(5));
    }

    #[test]
    fn extent_end_and_blocks() {
        let e = DiskExtent {
            disk: DiskId::new(3),
            start: PhysBlock::new(10),
            nblocks: 4,
        };
        assert_eq!(e.end(), PhysBlock::new(14));
        let blocks: Vec<_> = e.blocks().collect();
        assert_eq!(
            blocks,
            vec![
                PhysBlock::new(10),
                PhysBlock::new(11),
                PhysBlock::new(12),
                PhysBlock::new(13),
            ]
        );
    }

    #[test]
    fn read_write_predicates() {
        assert!(ReadWrite::Read.is_read());
        assert!(!ReadWrite::Read.is_write());
        assert!(ReadWrite::Write.is_write());
    }

    #[test]
    fn display_formats() {
        assert_eq!(LogicalBlock::new(7).to_string(), "L7");
        assert_eq!(PhysBlock::new(7).to_string(), "P7");
        assert_eq!(DiskId::new(2).to_string(), "disk2");
        assert_eq!(StreamId::new(9).to_string(), "stream9");
        assert_eq!(RequestId::new(1).to_string(), "req1");
    }
}
