//! The discrete-event engine: a time-ordered queue with deterministic
//! tie-breaking.
//!
//! Events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO), which keeps whole-simulation runs bit-for-bit
//! reproducible regardless of hash-map iteration order elsewhere.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event popped from the queue, tagged with its firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired<E> {
    /// The simulated instant the event fires at.
    pub time: SimTime,
    /// The event payload.
    pub event: E,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic future-event queue.
///
/// # Example
///
/// ```
/// use forhdc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// q.schedule(SimTime::from_nanos(10), "early2");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early2");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current clock ([`Self::now`]) —
    /// scheduling into the past indicates a simulator bug.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "scheduled event in the past: {time} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// firing time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        Some(Fired {
            time: entry.time,
            event: entry.event,
        })
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// The current simulated time: the firing time of the most recently
    /// popped event, or [`SimTime::ZERO`] before any pop.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_nanos(7), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
