//! Per-disk request schedulers.
//!
//! Each disk controller keeps a queue of pending media operations. The
//! paper's controllers use the LOOK (elevator) algorithm; FCFS, SSTF and
//! C-LOOK are provided for scheduling ablations.

use std::collections::VecDeque;

use crate::config::SchedulerKind;
use crate::request::{PhysBlock, ReadWrite};
use crate::time::SimTime;

/// A media operation waiting in a disk queue.
///
/// `token` is an opaque caller-owned identifier (the system simulation
/// uses it to find the sub-request the operation belongs to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedOp {
    /// Caller-owned identifier.
    pub token: u64,
    /// First physical block requested (before read-ahead extension).
    pub start: PhysBlock,
    /// Number of blocks to service (read-ahead extension included).
    pub nblocks: u32,
    /// The demanded prefix of `nblocks` — what the host asked for
    /// before any read-ahead extension. Carried in the op itself so the
    /// issuer needs no side table keyed by token.
    pub requested: u32,
    /// Read or write.
    pub kind: ReadWrite,
    /// Target cylinder (precomputed by the caller from the geometry).
    pub cylinder: u32,
    /// When the op entered the queue (queue-wait measurement).
    pub queued_at: SimTime,
    /// Service attempt, 0 for the first try. Fault-recovery requeues
    /// bump it; the fault-free path never reads it.
    pub attempt: u32,
}

/// A disk-queue scheduling discipline.
///
/// Implementations must eventually serve every pushed operation
/// (no starvation under a finite arrival stream).
pub trait DiskScheduler: std::fmt::Debug {
    /// Adds an operation to the queue.
    fn push(&mut self, op: QueuedOp);

    /// Removes and returns the next operation to service, given the
    /// head's current cylinder.
    fn pop_next(&mut self, head_cylinder: u32) -> Option<QueuedOp>;

    /// Number of queued operations.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The discipline's kind tag.
    fn kind(&self) -> SchedulerKind;
}

/// Creates a boxed scheduler of the requested kind.
///
/// # Example
///
/// ```
/// use forhdc_sim::config::SchedulerKind;
/// use forhdc_sim::sched::make_scheduler;
///
/// let s = make_scheduler(SchedulerKind::Look);
/// assert!(s.is_empty());
/// assert_eq!(s.kind(), SchedulerKind::Look);
/// ```
pub fn make_scheduler(kind: SchedulerKind) -> Box<dyn DiskScheduler> {
    match kind {
        SchedulerKind::Look => Box::new(LookScheduler::new()),
        SchedulerKind::Fcfs => Box::new(FcfsScheduler::new()),
        SchedulerKind::Sstf => Box::new(SstfScheduler::new()),
        SchedulerKind::Clook => Box::new(ClookScheduler::new()),
    }
}

/// Statically dispatched scheduler for the simulation hot path.
///
/// The event loop pushes and pops a queue entry for every media
/// operation; behind a `Box<dyn DiskScheduler>` each of those is an
/// indirect call the optimizer cannot see through. The enum's match
/// compiles to a predictable branch on a discipline that never changes
/// at runtime, and lets `push`/`pop_next` inline into the caller.
#[derive(Debug)]
pub enum Scheduler {
    /// LOOK (elevator) — the paper's discipline.
    Look(LookScheduler),
    /// First-come first-served.
    Fcfs(FcfsScheduler),
    /// Shortest seek time first.
    Sstf(SstfScheduler),
    /// Circular LOOK.
    Clook(ClookScheduler),
}

impl Scheduler {
    /// Creates a scheduler of the requested kind.
    pub fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::Look => Scheduler::Look(LookScheduler::new()),
            SchedulerKind::Fcfs => Scheduler::Fcfs(FcfsScheduler::new()),
            SchedulerKind::Sstf => Scheduler::Sstf(SstfScheduler::new()),
            SchedulerKind::Clook => Scheduler::Clook(ClookScheduler::new()),
        }
    }

    /// Adds an operation to the queue.
    #[inline]
    pub fn push(&mut self, op: QueuedOp) {
        match self {
            Scheduler::Look(s) => s.push(op),
            Scheduler::Fcfs(s) => s.push(op),
            Scheduler::Sstf(s) => s.push(op),
            Scheduler::Clook(s) => s.push(op),
        }
    }

    /// Removes and returns the next operation to service.
    #[inline]
    pub fn pop_next(&mut self, head_cylinder: u32) -> Option<QueuedOp> {
        match self {
            Scheduler::Look(s) => s.pop_next(head_cylinder),
            Scheduler::Fcfs(s) => s.pop_next(head_cylinder),
            Scheduler::Sstf(s) => s.pop_next(head_cylinder),
            Scheduler::Clook(s) => s.pop_next(head_cylinder),
        }
    }

    /// Number of queued operations.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Scheduler::Look(s) => s.len(),
            Scheduler::Fcfs(s) => s.len(),
            Scheduler::Sstf(s) => s.len(),
            Scheduler::Clook(s) => s.len(),
        }
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The discipline's kind tag.
    pub fn kind(&self) -> SchedulerKind {
        match self {
            Scheduler::Look(_) => SchedulerKind::Look,
            Scheduler::Fcfs(_) => SchedulerKind::Fcfs,
            Scheduler::Sstf(_) => SchedulerKind::Sstf,
            Scheduler::Clook(_) => SchedulerKind::Clook,
        }
    }
}

/// LOOK (elevator) scheduling: sweep in the current direction serving
/// every queued cylinder, reverse when nothing remains ahead.
///
/// The queue is a sorted `(cylinder, slot)` index over a free-listed
/// slab of ops — equivalent to the former `BTreeMap` keyed by
/// `(cylinder, seq)` but allocation-free at the depths disk queues
/// actually reach. Only the 8-byte index entries shift on the sorted
/// insert/remove; the 48-byte ops stay put in their slots, which at
/// queue depths of a hundred-plus streams is most of the memory
/// traffic this structure used to generate.
#[derive(Debug, Default)]
pub struct LookScheduler {
    /// `(cylinder, slot)` sorted by cylinder, same-cylinder ties in
    /// arrival order.
    index: Vec<(u32, u32)>,
    slab: Vec<QueuedOp>,
    free: Vec<u32>,
    sweeping_up: bool,
}

impl LookScheduler {
    /// Creates an empty LOOK queue sweeping upward.
    pub fn new() -> Self {
        LookScheduler {
            index: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            sweeping_up: true,
        }
    }

    /// Removes index entry `i` and returns its op, recycling the slot.
    fn take(&mut self, i: usize) -> QueuedOp {
        let (_, slot) = self.index.remove(i);
        self.free.push(slot);
        self.slab[slot as usize]
    }
}

impl DiskScheduler for LookScheduler {
    fn push(&mut self, op: QueuedOp) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = op;
                s
            }
            None => {
                self.slab.push(op);
                (self.slab.len() - 1) as u32
            }
        };
        let i = self.index.partition_point(|&(c, _)| c <= op.cylinder);
        self.index.insert(i, (op.cylinder, slot));
    }

    fn pop_next(&mut self, head_cylinder: u32) -> Option<QueuedOp> {
        if self.index.is_empty() {
            return None;
        }
        if self.sweeping_up {
            let i = self.index.partition_point(|&(c, _)| c < head_cylinder);
            if i < self.index.len() {
                return Some(self.take(i));
            }
            self.sweeping_up = false;
        }
        // Sweeping down: the highest queued cylinder at or below the
        // head (most recent arrival on ties); if none, reverse again.
        let i = self.index.partition_point(|&(c, _)| c <= head_cylinder);
        if i > 0 {
            return Some(self.take(i - 1));
        }
        self.sweeping_up = true;
        let i = self.index.partition_point(|&(c, _)| c < head_cylinder);
        if i < self.index.len() {
            Some(self.take(i))
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Look
    }
}

/// First-come first-served scheduling.
#[derive(Debug, Default)]
pub struct FcfsScheduler {
    queue: VecDeque<QueuedOp>,
}

impl FcfsScheduler {
    /// Creates an empty FCFS queue.
    pub fn new() -> Self {
        FcfsScheduler {
            queue: VecDeque::new(),
        }
    }
}

impl DiskScheduler for FcfsScheduler {
    fn push(&mut self, op: QueuedOp) {
        self.queue.push_back(op);
    }

    fn pop_next(&mut self, _head_cylinder: u32) -> Option<QueuedOp> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Fcfs
    }
}

/// Shortest-seek-time-first scheduling (greedy nearest cylinder; can
/// starve under sustained load, which is why it is ablation-only).
#[derive(Debug, Default)]
pub struct SstfScheduler {
    queue: Vec<QueuedOp>,
}

impl SstfScheduler {
    /// Creates an empty SSTF queue.
    pub fn new() -> Self {
        SstfScheduler { queue: Vec::new() }
    }
}

impl DiskScheduler for SstfScheduler {
    fn push(&mut self, op: QueuedOp) {
        self.queue.push(op);
    }

    fn pop_next(&mut self, head_cylinder: u32) -> Option<QueuedOp> {
        if self.queue.is_empty() {
            return None;
        }
        let (idx, _) = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(i, op)| (op.cylinder.abs_diff(head_cylinder), *i))
            .expect("non-empty queue");
        Some(self.queue.swap_remove(idx))
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Sstf
    }
}

/// Circular LOOK: always sweep upward; when nothing remains ahead, jump
/// back to the lowest queued cylinder.
#[derive(Debug, Default)]
pub struct ClookScheduler {
    queue: Vec<QueuedOp>, // sorted by cylinder, arrival order on ties
}

impl ClookScheduler {
    /// Creates an empty C-LOOK queue.
    pub fn new() -> Self {
        ClookScheduler { queue: Vec::new() }
    }
}

impl DiskScheduler for ClookScheduler {
    fn push(&mut self, op: QueuedOp) {
        let i = self.queue.partition_point(|o| o.cylinder <= op.cylinder);
        self.queue.insert(i, op);
    }

    fn pop_next(&mut self, head_cylinder: u32) -> Option<QueuedOp> {
        if self.queue.is_empty() {
            return None;
        }
        let i = self.queue.partition_point(|o| o.cylinder < head_cylinder);
        let i = if i < self.queue.len() { i } else { 0 };
        Some(self.queue.remove(i))
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Clook
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(token: u64, cylinder: u32) -> QueuedOp {
        QueuedOp {
            token,
            start: PhysBlock::new(cylinder as u64 * 440),
            nblocks: 1,
            requested: 1,
            kind: ReadWrite::Read,
            cylinder,
            queued_at: SimTime::ZERO,
            attempt: 0,
        }
    }

    fn drain(s: &mut dyn DiskScheduler, mut head: u32) -> Vec<u32> {
        let mut order = Vec::new();
        while let Some(o) = s.pop_next(head) {
            order.push(o.cylinder);
            head = o.cylinder;
        }
        order
    }

    #[test]
    fn look_sweeps_up_then_down() {
        let mut s = LookScheduler::new();
        for &c in &[50, 10, 80, 30, 60] {
            s.push(op(c as u64, c));
        }
        // Head at 40, sweeping up: 50, 60, 80, then down: 30, 10.
        assert_eq!(drain(&mut s, 40), vec![50, 60, 80, 30, 10]);
    }

    #[test]
    fn look_reverses_twice_if_needed() {
        let mut s = LookScheduler::new();
        s.push(op(1, 10));
        assert_eq!(s.pop_next(40).unwrap().cylinder, 10); // nothing above 40
        s.push(op(2, 90));
        // Now sweeping down from 10; nothing below, so reverse to 90.
        assert_eq!(s.pop_next(10).unwrap().cylinder, 90);
    }

    #[test]
    fn look_same_cylinder_is_fifo() {
        let mut s = LookScheduler::new();
        s.push(op(1, 5));
        s.push(op(2, 5));
        assert_eq!(s.pop_next(0).unwrap().token, 1);
        assert_eq!(s.pop_next(5).unwrap().token, 2);
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut s = FcfsScheduler::new();
        for &c in &[50, 10, 80] {
            s.push(op(c as u64, c));
        }
        assert_eq!(drain(&mut s, 0), vec![50, 10, 80]);
    }

    #[test]
    fn sstf_picks_nearest() {
        let mut s = SstfScheduler::new();
        for &c in &[50, 10, 80, 42] {
            s.push(op(c as u64, c));
        }
        // 42 (dist 2), then 50 (8), then 80 (30) beats 10 (40), then 10.
        assert_eq!(drain(&mut s, 40), vec![42, 50, 80, 10]);
    }

    #[test]
    fn clook_wraps_to_bottom() {
        let mut s = ClookScheduler::new();
        for &c in &[50, 10, 80, 30] {
            s.push(op(c as u64, c));
        }
        // Head at 40: 50, 80, wrap to 10, 30.
        assert_eq!(drain(&mut s, 40), vec![50, 80, 10, 30]);
    }

    #[test]
    fn all_schedulers_serve_everything() {
        for kind in [
            SchedulerKind::Look,
            SchedulerKind::Fcfs,
            SchedulerKind::Sstf,
            SchedulerKind::Clook,
        ] {
            let mut s = make_scheduler(kind);
            for i in 0..100u64 {
                s.push(op(i, ((i * 37) % 500) as u32));
            }
            assert_eq!(s.len(), 100);
            let served = drain(s.as_mut(), 250);
            assert_eq!(served.len(), 100, "{kind:?} lost requests");
            assert!(s.is_empty());
        }
    }
}
