//! Simulated time as integer nanoseconds.
//!
//! All event ordering in the simulator is integral — no floating-point
//! comparisons — so runs are bit-for-bit deterministic. [`SimTime`] is an
//! instant on the simulated clock; [`SimDuration`] is a span between two
//! instants. Both are thin `u64` newtypes.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use forhdc_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use forhdc_sim::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns this instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1e6).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns this duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Duration needed to move `bytes` at `bytes_per_sec`, rounded up to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        assert!(bytes_per_sec > 0, "transfer rate must be positive");
        // ns = bytes * 1e9 / rate, rounded up. Every realistic transfer
        // fits the u64 intermediate; the u128 fallback covers the rest.
        if bytes < u64::MAX / 1_000_000_000 {
            SimDuration((bytes * 1_000_000_000).div_ceil(bytes_per_sec))
        } else {
            let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
            SimDuration(ns as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(2), SimDuration::from_micros(2_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1_500)
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_matches_rate() {
        // 54 MB/s, 128 KiB: 131072 / 54e6 s = 2.4272... ms
        let d = SimDuration::for_transfer(131_072, 54_000_000);
        let expect_ms = 131_072.0 / 54e6 * 1e3;
        assert!((d.as_millis_f64() - expect_ms).abs() < 1e-6);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 1 GB/s is exactly 1 ns; 1 byte at 3 GB/s rounds up to 1 ns.
        assert_eq!(SimDuration::for_transfer(1, 1_000_000_000).as_nanos(), 1);
        assert_eq!(SimDuration::for_transfer(1, 3_000_000_000).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "transfer rate must be positive")]
    fn zero_rate_panics() {
        let _ = SimDuration::for_transfer(1, 0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(4));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
