//! The shared host-interface bus (Ultra160 SCSI) as a serializing
//! resource.
//!
//! All disks in the array hang off one SCSI card, so controller-cache
//! hits and media-read completions contend for the same 160 MB/s of bus
//! bandwidth. The model is a FIFO resource: a transfer starts at
//! `max(now, busy_until)` and holds the bus for a fixed per-command
//! overhead plus `bytes / rate`.

use crate::time::{SimDuration, SimTime};

/// A reserved slot on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusSlot {
    /// When the transfer begins (≥ the requested instant).
    pub start: SimTime,
    /// When the transfer completes and the bus frees.
    pub end: SimTime,
}

impl BusSlot {
    /// Time spent waiting for the bus before the transfer started.
    pub fn queueing(&self, requested_at: SimTime) -> SimDuration {
        self.start.since(requested_at)
    }
}

/// A serializing bus with fixed bandwidth and per-transfer overhead.
///
/// # Example
///
/// ```
/// use forhdc_sim::{BusModel, SimDuration, SimTime};
///
/// let mut bus = BusModel::new(160_000_000, SimDuration::from_micros(50));
/// let a = bus.reserve(SimTime::ZERO, 4096);
/// let b = bus.reserve(SimTime::ZERO, 4096);
/// assert_eq!(b.start, a.end); // second transfer waits for the first
/// ```
#[derive(Debug, Clone)]
pub struct BusModel {
    rate: u64,
    overhead: SimDuration,
    busy_until: SimTime,
    transfers: u64,
    bytes_moved: u64,
    busy_time: SimDuration,
    wait_time: SimDuration,
}

impl BusModel {
    /// Creates a bus with `rate` bytes/second and a fixed `overhead`
    /// charged per transfer (command processing, arbitration).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn new(rate: u64, overhead: SimDuration) -> Self {
        assert!(rate > 0, "bus rate must be positive");
        BusModel {
            rate,
            overhead,
            busy_until: SimTime::ZERO,
            transfers: 0,
            bytes_moved: 0,
            busy_time: SimDuration::ZERO,
            wait_time: SimDuration::ZERO,
        }
    }

    /// Reserves the bus for a `bytes`-long transfer requested at `now`,
    /// returning when the transfer starts and ends. Zero-byte transfers
    /// still pay the per-command overhead.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> BusSlot {
        let start = now.max(self.busy_until);
        let hold = self.overhead + SimDuration::for_transfer(bytes, self.rate);
        let end = start + hold;
        self.busy_until = end;
        self.transfers += 1;
        self.bytes_moved += bytes;
        self.busy_time += hold;
        self.wait_time += start.since(now);
        BusSlot { start, end }
    }

    /// The instant the bus next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Transfers completed or scheduled so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total time the bus was held.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Total time transfers spent queued behind earlier ones.
    pub fn wait_time(&self) -> SimDuration {
        self.wait_time
    }

    /// Bus utilization over `elapsed` total simulated time, in `[0, 1]`
    /// (clamped).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> BusModel {
        BusModel::new(160_000_000, SimDuration::from_micros(50))
    }

    #[test]
    fn idle_bus_starts_immediately() {
        let mut b = bus();
        let slot = b.reserve(SimTime::from_nanos(123), 0);
        assert_eq!(slot.start, SimTime::from_nanos(123));
        assert_eq!(slot.queueing(SimTime::from_nanos(123)), SimDuration::ZERO);
    }

    #[test]
    fn transfers_serialize() {
        let mut b = bus();
        let a = b.reserve(SimTime::ZERO, 1_600_000); // 10 ms of data + 50 us
        let c = b.reserve(SimTime::ZERO, 1_600_000);
        assert_eq!(c.start, a.end);
        assert!(c.queueing(SimTime::ZERO) > SimDuration::from_millis(9));
    }

    #[test]
    fn later_request_after_idle_gap() {
        let mut b = bus();
        let a = b.reserve(SimTime::ZERO, 16_000); // short
        let later = a.end + SimDuration::from_millis(5);
        let c = b.reserve(later, 16_000);
        assert_eq!(c.start, later);
    }

    #[test]
    fn transfer_duration_matches_rate() {
        let mut b = BusModel::new(160_000_000, SimDuration::ZERO);
        let slot = b.reserve(SimTime::ZERO, 160_000_000); // one second of data
        assert_eq!(slot.end.since(slot.start), SimDuration::from_secs(1));
    }

    #[test]
    fn stats_accumulate() {
        let mut b = bus();
        b.reserve(SimTime::ZERO, 1000);
        b.reserve(SimTime::ZERO, 2000);
        assert_eq!(b.transfers(), 2);
        assert_eq!(b.bytes_moved(), 3000);
        assert!(b.busy_time() > SimDuration::from_micros(100));
        assert!(b.wait_time() > SimDuration::ZERO);
    }

    #[test]
    fn utilization_clamps() {
        let mut b = bus();
        b.reserve(SimTime::ZERO, 160_000);
        assert_eq!(b.utilization(SimDuration::ZERO), 0.0);
        assert!(b.utilization(SimDuration::from_nanos(1)) <= 1.0);
        let u = b.utilization(SimDuration::from_secs(1));
        assert!(u > 0.0 && u < 0.01);
    }
}
