//! Zoned-recording transfer-rate profiles.
//!
//! Real drives record more sectors on outer tracks (zoned bit
//! recording), so the media transfer rate falls from the outer to the
//! inner cylinders — the Ultrastar 36Z15's "~440 sectors per track"
//! (Table 1) is an average over roughly ten zones. The paper simulates
//! the average; this module supplies the per-zone refinement as an
//! opt-in: a piecewise-constant scale factor over the cylinder range,
//! applied to the nominal media rate by [`crate::DiskMechanics`].

/// A piecewise-constant media-rate profile over the cylinders.
///
/// # Example
///
/// ```
/// use forhdc_sim::zones::ZoneProfile;
///
/// let z = ZoneProfile::ultrastar_like(10_000);
/// assert!(z.scale_at(0) > 1.0);          // outer zone: faster
/// assert!(z.scale_at(9_999) < 1.0);      // inner zone: slower
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneProfile {
    /// `(one_past_last_cylinder, rate_scale)`, ascending by cylinder.
    boundaries: Vec<(u32, f64)>,
}

impl ZoneProfile {
    /// Creates a profile from `(one_past_last_cylinder, scale)` pairs,
    /// ascending; the final entry must cover the whole disk.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, not strictly ascending, or any
    /// scale is not positive and finite.
    pub fn new(boundaries: Vec<(u32, f64)>) -> Self {
        assert!(!boundaries.is_empty(), "need at least one zone");
        let mut prev = 0u32;
        for &(end, scale) in &boundaries {
            assert!(end > prev, "zone boundaries must be strictly ascending");
            assert!(
                scale.is_finite() && scale > 0.0,
                "zone scale must be positive"
            );
            prev = end;
        }
        ZoneProfile { boundaries }
    }

    /// A 9-zone profile shaped like a real Ultrastar: the outer zone
    /// transfers ~22 % faster than the average, the inner ~22 % slower,
    /// with the cylinder-weighted mean scale equal to 1 (so the nominal
    /// average rate of Table 1 is preserved).
    pub fn ultrastar_like(cylinders: u32) -> Self {
        assert!(cylinders >= 9, "too few cylinders for 9 zones");
        let scales = [1.22, 1.17, 1.11, 1.06, 1.0, 0.94, 0.89, 0.83, 0.78];
        let per = cylinders / 9;
        let boundaries = scales
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let end = if i == 8 {
                    cylinders
                } else {
                    (i as u32 + 1) * per
                };
                (end, s)
            })
            .collect();
        ZoneProfile::new(boundaries)
    }

    /// The rate scale at `cylinder` (cylinders past the last boundary
    /// use the innermost zone's scale).
    pub fn scale_at(&self, cylinder: u32) -> f64 {
        for &(end, scale) in &self.boundaries {
            if cylinder < end {
                return scale;
            }
        }
        self.boundaries.last().expect("non-empty").1
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.boundaries.len()
    }

    /// Cylinder-weighted mean scale (≈1 for calibrated profiles).
    pub fn mean_scale(&self) -> f64 {
        let mut prev = 0u32;
        let mut acc = 0.0;
        for &(end, scale) in &self.boundaries {
            acc += (end - prev) as f64 * scale;
            prev = end;
        }
        acc / prev as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ultrastar_profile_is_calibrated() {
        let z = ZoneProfile::ultrastar_like(9_988);
        assert_eq!(z.zone_count(), 9);
        assert!(
            (z.mean_scale() - 1.0).abs() < 0.01,
            "mean {}",
            z.mean_scale()
        );
        // Monotone outer -> inner.
        let mut prev = f64::INFINITY;
        for c in (0..9_988).step_by(1_110) {
            let s = z.scale_at(c);
            assert!(s <= prev);
            prev = s;
        }
    }

    #[test]
    fn scale_lookup_honours_boundaries() {
        let z = ZoneProfile::new(vec![(10, 2.0), (20, 1.0), (30, 0.5)]);
        assert_eq!(z.scale_at(0), 2.0);
        assert_eq!(z.scale_at(9), 2.0);
        assert_eq!(z.scale_at(10), 1.0);
        assert_eq!(z.scale_at(29), 0.5);
        assert_eq!(z.scale_at(1_000), 0.5); // past the end: innermost
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_zones_panic() {
        let _ = ZoneProfile::new(vec![(10, 1.0), (10, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_scale_panics() {
        let _ = ZoneProfile::new(vec![(10, 0.0)]);
    }
}
