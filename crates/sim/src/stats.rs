//! Per-disk and array-wide mechanical statistics.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Counters for one disk's mechanical activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Media operations performed (each one seek+rotation+transfer).
    pub media_ops: u64,
    /// Blocks read from the media, including read-ahead blocks.
    pub blocks_read: u64,
    /// Blocks written to the media.
    pub blocks_written: u64,
    /// Of `blocks_read`, how many were speculative read-ahead.
    pub read_ahead_blocks: u64,
    /// Total time spent seeking.
    pub seek_time: SimDuration,
    /// Total rotational latency.
    pub rotation_time: SimDuration,
    /// Total media transfer time.
    pub transfer_time: SimDuration,
    /// Total controller overhead time.
    pub overhead_time: SimDuration,
    /// Total time the disk arm was busy (sum of service times).
    pub busy_time: SimDuration,
    /// Maximum queue depth observed.
    pub max_queue_depth: usize,
    /// Integral of queue depth over time (depth × nanoseconds), for
    /// the time-weighted mean. Updated on every depth change.
    pub queue_depth_area: u128,
    /// Queue depth as of the last [`DiskStats::note_queue_depth`].
    pub queue_depth: usize,
    /// Time of the last depth change.
    pub last_depth_change: SimTime,
}

impl DiskStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        DiskStats::default()
    }

    /// Records one media operation's timing breakdown.
    pub fn record_op(
        &mut self,
        timing: &crate::mechanics::ServiceTiming,
        read_blocks: u64,
        written_blocks: u64,
        read_ahead: u64,
    ) {
        self.media_ops += 1;
        self.blocks_read += read_blocks;
        self.blocks_written += written_blocks;
        self.read_ahead_blocks += read_ahead;
        self.seek_time += timing.seek;
        self.rotation_time += timing.rotation;
        self.transfer_time += timing.transfer;
        self.overhead_time += timing.overhead;
        self.busy_time += timing.total();
    }

    /// Notes the queue depth after a push **or a pop** at simulated
    /// time `now`, tracking the maximum and accumulating the
    /// depth-over-time integral for the time-weighted mean.
    pub fn note_queue_depth(&mut self, depth: usize, now: SimTime) {
        let elapsed = now.since(self.last_depth_change);
        self.queue_depth_area += self.queue_depth as u128 * elapsed.as_nanos() as u128;
        self.queue_depth = depth;
        self.last_depth_change = now;
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    /// Time-weighted mean queue depth over `elapsed` simulated time.
    ///
    /// Exact once the queue has drained (the final depth is 0, so the
    /// tail past the last change contributes nothing); mid-run it
    /// understates by at most `queue_depth × time-since-last-change`.
    pub fn mean_queue_depth(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.queue_depth_area as f64 / elapsed.as_nanos() as f64
    }

    /// Disk utilization over `elapsed` wall-clock simulated time.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / elapsed.as_nanos() as f64).min(1.0)
    }

    /// Mean service time per media operation.
    pub fn mean_service_time(&self) -> SimDuration {
        if self.media_ops == 0 {
            SimDuration::ZERO
        } else {
            self.busy_time / self.media_ops
        }
    }

    /// Merges another disk's counters into this one (array aggregation).
    pub fn merge(&mut self, other: &DiskStats) {
        self.media_ops += other.media_ops;
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.read_ahead_blocks += other.read_ahead_blocks;
        self.seek_time += other.seek_time;
        self.rotation_time += other.rotation_time;
        self.transfer_time += other.transfer_time;
        self.overhead_time += other.overhead_time;
        self.busy_time += other.busy_time;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        // Summed areas make the array-wide mean the sum of per-disk
        // means (total queued ops across the array at a given time).
        self.queue_depth_area += other.queue_depth_area;
        self.queue_depth += other.queue_depth;
        self.last_depth_change = self.last_depth_change.max(other.last_depth_change);
    }
}

impl fmt::Display for DiskStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops, {} read ({} RA), {} written, busy {} \
             (seek {}, rot {}, xfer {}), mean svc {}, max qdepth {}",
            self.media_ops,
            self.blocks_read,
            self.read_ahead_blocks,
            self.blocks_written,
            self.busy_time,
            self.seek_time,
            self.rotation_time,
            self.transfer_time,
            self.mean_service_time(),
            self.max_queue_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanics::ServiceTiming;

    fn timing(ms: u64) -> ServiceTiming {
        ServiceTiming {
            seek: SimDuration::from_millis(ms),
            rotation: SimDuration::from_millis(1),
            transfer: SimDuration::from_millis(2),
            overhead: SimDuration::ZERO,
        }
    }

    #[test]
    fn record_accumulates() {
        let mut s = DiskStats::new();
        s.record_op(&timing(3), 8, 0, 4);
        s.record_op(&timing(1), 0, 2, 0);
        assert_eq!(s.media_ops, 2);
        assert_eq!(s.blocks_read, 8);
        assert_eq!(s.blocks_written, 2);
        assert_eq!(s.read_ahead_blocks, 4);
        assert_eq!(s.busy_time, SimDuration::from_millis(3 + 1 + 2 + 1 + 1 + 2));
    }

    #[test]
    fn utilization_and_mean() {
        let mut s = DiskStats::new();
        s.record_op(&timing(3), 1, 0, 0); // 6 ms busy
        assert!((s.utilization(SimDuration::from_millis(12)) - 0.5).abs() < 1e-9);
        assert_eq!(s.mean_service_time(), SimDuration::from_millis(6));
        assert_eq!(DiskStats::new().mean_service_time(), SimDuration::ZERO);
        assert_eq!(DiskStats::new().utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = DiskStats::new();
        a.record_op(&timing(1), 1, 0, 0);
        a.note_queue_depth(3, SimTime::from_nanos(10));
        let mut b = DiskStats::new();
        b.record_op(&timing(2), 2, 1, 1);
        b.note_queue_depth(7, SimTime::from_nanos(10));
        b.note_queue_depth(0, SimTime::from_nanos(20));
        a.merge(&b);
        assert_eq!(a.media_ops, 2);
        assert_eq!(a.blocks_read, 3);
        assert_eq!(a.max_queue_depth, 7);
        assert_eq!(a.queue_depth_area, 70);
        assert_eq!(a.queue_depth, 3);
    }

    #[test]
    fn mean_queue_depth_is_time_weighted() {
        let mut s = DiskStats::new();
        // Depth 2 for 100 ns, then 5 for 50 ns, then drained at 150 ns.
        s.note_queue_depth(2, SimTime::ZERO);
        s.note_queue_depth(5, SimTime::from_nanos(100));
        s.note_queue_depth(0, SimTime::from_nanos(150));
        assert_eq!(s.queue_depth_area, 2 * 100 + 5 * 50);
        let mean = s.mean_queue_depth(SimDuration::from_nanos(150));
        assert!((mean - 3.0).abs() < 1e-12, "{mean}");
        assert_eq!(s.max_queue_depth, 5);
        assert_eq!(DiskStats::new().mean_queue_depth(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!DiskStats::new().to_string().is_empty());
    }
}
