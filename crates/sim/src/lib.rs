//! # forhdc-sim
//!
//! A deterministic discrete-event simulator of an array of SCSI disks,
//! modeled after the testbed of *Improving Disk Throughput in
//! Data-Intensive Servers* (Carrera & Bianchini, HPCA 2004): an
//! Ultra160 SCSI card driving eight IBM Ultrastar 36Z15-class drives.
//!
//! The crate provides the *mechanical* substrate that the paper's
//! controller-cache techniques (FOR and HDC, in `forhdc-core`) sit on:
//!
//! * [`time`] — integer-nanosecond simulated time ([`SimTime`],
//!   [`SimDuration`]) with deterministic ordering.
//! * [`engine`] — a calendar event queue with (time, sequence)
//!   tie-breaking ([`EventQueue`]).
//! * [`calendar`] — the sharded per-lane calendar with identical pop
//!   order and O(lanes) operations ([`LaneCalendar`]).
//! * [`geometry`] — physical-block → (cylinder, surface, sector) mapping
//!   ([`DiskGeometry`]).
//! * [`seek`] — the paper's piecewise seek-time model
//!   `α + β·√n` / `γ + δ·n` ([`SeekModel`]).
//! * [`rotation`] — angular-position rotation model at 15 000 rpm
//!   ([`RotationModel`]).
//! * [`mechanics`] — full positioning + media-transfer service times
//!   ([`DiskMechanics`]).
//! * [`sched`] — per-disk request queues: LOOK (the paper's default),
//!   plus FCFS / SSTF / C-LOOK for ablations ([`sched::DiskScheduler`]).
//! * [`bus`] — the shared Ultra160 bus as a serializing resource
//!   ([`BusModel`]).
//! * [`mod@array`] — round-robin striping across the array
//!   ([`StripingMap`]).
//! * [`config`] — Table 1 of the paper as typed defaults
//!   ([`DiskConfig`], [`ArrayConfig`]).
//!
//! # Example
//!
//! Compute the service time of a random 16-KByte read on the default
//! (Ultrastar 36Z15-like) drive:
//!
//! ```
//! use forhdc_sim::{DiskConfig, DiskMechanics, SimTime, SimDuration};
//! use forhdc_sim::request::{PhysBlock, ReadWrite};
//!
//! let cfg = DiskConfig::default();
//! let mut mech = DiskMechanics::new(&cfg);
//! let timing = mech.service(ReadWrite::Read, PhysBlock::new(1_000_000), 4, SimTime::ZERO);
//! assert!(timing.total() > SimDuration::ZERO);
//! ```

pub mod array;
pub mod bus;
pub mod calendar;
pub mod config;
pub mod engine;
pub mod geometry;
pub mod mechanics;
pub mod request;
pub mod rotation;
pub mod sched;
pub mod seek;
pub mod stats;
pub mod time;
pub mod zones;

pub use array::StripingMap;
pub use bus::BusModel;
pub use calendar::LaneCalendar;
pub use config::{ArrayConfig, DiskConfig, ReadSplit, SchedulerKind};
pub use engine::EventQueue;
pub use geometry::{BlockAddress, DiskGeometry};
pub use mechanics::{DiskMechanics, ServiceTiming};
pub use request::{DiskId, LogicalBlock, PhysBlock, ReadWrite, RequestId, StreamId};
pub use rotation::RotationModel;
pub use seek::SeekModel;
pub use stats::DiskStats;
pub use time::{SimDuration, SimTime};
pub use zones::ZoneProfile;
