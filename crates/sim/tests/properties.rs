//! Property-based invariants of the simulator substrate.

use proptest::prelude::*;

use forhdc_sim::sched::{make_scheduler, QueuedOp};
use forhdc_sim::{
    DiskConfig, DiskGeometry, DiskMechanics, EventQueue, PhysBlock, ReadWrite, RotationModel,
    SchedulerKind, SeekModel, SimDuration, SimTime,
};

proptest! {
    /// The event queue pops in exactly sorted (time, insertion) order.
    #[test]
    fn event_queue_is_a_stable_sort(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        reference.sort();
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| {
            q.pop().map(|f| (f.time.as_nanos(), f.event))
        })
        .collect();
        prop_assert_eq!(popped, reference);
    }

    /// Seek times are non-negative and monotone in distance for any
    /// non-negative coefficients.
    #[test]
    fn seek_model_monotone(
        alpha in 0.0f64..5.0,
        beta in 0.0f64..0.5,
        theta in 1u32..5_000,
        dist in 0u32..20_000,
    ) {
        // Build a continuous long-seek branch from the short one.
        let at_theta = alpha + beta * (theta as f64).sqrt();
        let delta = beta / (2.0 * (theta as f64).sqrt()); // tangent slope
        let gamma = at_theta - delta * theta as f64;
        let m = SeekModel::new(alpha, beta, gamma.max(0.0), delta, theta);
        prop_assert!(m.seek_ms(dist) >= 0.0);
        if dist > 0 {
            prop_assert!(m.seek_ms(dist) >= m.seek_ms(dist - 1) - 1e-9);
        }
    }

    /// Rotational latency is always within one revolution and lands the
    /// head exactly on the target angle.
    #[test]
    fn rotation_latency_in_bounds(rpm in 3_600u32..30_000, t in 0u64..10_000_000, angle in 0u32..1000) {
        let r = RotationModel::new(rpm);
        let target = angle as f64 / 1000.0;
        let now = SimTime::from_nanos(t);
        let wait = r.latency_to(target, now);
        prop_assert!(wait < r.period());
        let arrived = r.angle_at(now + wait);
        let diff = (arrived - target).abs().min(1.0 - (arrived - target).abs());
        // One-nanosecond rounding tolerance.
        prop_assert!(diff < 2.0 / r.period().as_nanos() as f64 + 1e-9, "diff {diff}");
    }

    /// Geometry addressing is a bijection within capacity.
    #[test]
    fn geometry_addressing_bijective(
        spt in 1u32..8,          // sectors_per_track = spt * 8 (block aligned)
        surfaces in 1u32..16,
        cylinders in 1u32..500,
        probe in 0u64..1_000_000,
    ) {
        let g = DiskGeometry::new(spt * 8, surfaces, cylinders, 4096);
        let cap = g.capacity_blocks();
        let block = PhysBlock::new(probe % cap);
        let addr = g.address(block);
        prop_assert!(addr.cylinder < cylinders);
        prop_assert!(addr.surface < surfaces);
        prop_assert!(addr.sector < spt * 8);
        // Reconstruct the block index from the address.
        let rebuilt = (addr.cylinder as u64 * g.blocks_per_cylinder() as u64)
            + (addr.surface as u64 * g.blocks_per_track() as u64)
            + (addr.sector / 8) as u64;
        prop_assert_eq!(rebuilt, block.index());
    }

    /// Every scheduler serves every queued op exactly once.
    #[test]
    fn schedulers_lose_nothing(
        kind_idx in 0usize..4,
        cylinders in prop::collection::vec(0u32..10_000, 1..100),
    ) {
        let kind = [
            SchedulerKind::Look,
            SchedulerKind::Fcfs,
            SchedulerKind::Sstf,
            SchedulerKind::Clook,
        ][kind_idx];
        let mut s = make_scheduler(kind);
        for (i, &c) in cylinders.iter().enumerate() {
            s.push(QueuedOp {
                token: i as u64,
                start: PhysBlock::new(c as u64 * 440),
                nblocks: 1,
                requested: 1,
                kind: ReadWrite::Read,
                cylinder: c,
                queued_at: SimTime::ZERO,
                attempt: 0,
            });
        }
        let mut seen: Vec<u64> = Vec::new();
        let mut head = 0;
        while let Some(op) = s.pop_next(head) {
            seen.push(op.token);
            head = op.cylinder;
        }
        seen.sort();
        let expected: Vec<u64> = (0..cylinders.len() as u64).collect();
        prop_assert_eq!(seen, expected);
    }

    /// Service time always includes the media transfer and the head
    /// finishes on the extent's last cylinder.
    #[test]
    fn mechanics_service_sane(start in 0u64..4_000_000, n in 1u32..64, at in 0u64..50_000_000) {
        let cfg = DiskConfig::default();
        let mut mech = DiskMechanics::new(&cfg);
        let cap = cfg.geometry.capacity_blocks();
        let start = PhysBlock::new(start % (cap - 64));
        let t = mech.service(ReadWrite::Read, start, n, SimTime::from_nanos(at));
        let min_transfer = SimDuration::for_transfer(n as u64 * 4096, cfg.media_rate);
        prop_assert!(t.transfer == min_transfer);
        prop_assert!(t.total() >= min_transfer);
        let last = PhysBlock::new(start.index() + n as u64 - 1);
        prop_assert_eq!(mech.head_cylinder(), cfg.geometry.cylinder_of(last));
    }
}

proptest! {
    /// The lane calendar pops in exactly the order of the heap-based
    /// [`EventQueue`] for arbitrary interleavings of lane-affine and
    /// lane-less schedules — including schedules that violate a lane's
    /// monotonicity (forced onto the fallback heap) and schedules
    /// performed mid-drain at the advanced clock.
    #[test]
    fn calendar_matches_event_queue(
        ops in prop::collection::vec((0u64..1_000, 0usize..6), 1..300),
        drain_every in 1usize..8,
    ) {
        use forhdc_sim::LaneCalendar;
        let mut q = EventQueue::new();
        let mut c = LaneCalendar::with_lanes(4);
        let mut base_q = 0u64;
        let mut base_c = 0u64;
        let mut popped_q = Vec::new();
        let mut popped_c = Vec::new();
        for (i, &(dt, lane)) in ops.iter().enumerate() {
            // Schedule relative to each queue's own clock so both see
            // the same absolute times (the clocks advance in lockstep
            // because the pop orders are asserted equal).
            q.schedule(SimTime::from_nanos(base_q + dt), i);
            if lane < 4 {
                c.schedule_lane(lane, SimTime::from_nanos(base_c + dt), i);
            } else {
                c.schedule(SimTime::from_nanos(base_c + dt), i);
            }
            if i % drain_every == drain_every - 1 {
                let a = q.pop().unwrap();
                let b = c.pop().unwrap();
                popped_q.push((a.time.as_nanos(), a.event));
                popped_c.push((b.time.as_nanos(), b.event));
                base_q = a.time.as_nanos();
                base_c = b.time.as_nanos();
                prop_assert_eq!(&popped_q, &popped_c);
            }
        }
        while let Some(a) = q.pop() {
            let b = c.pop().unwrap();
            popped_q.push((a.time.as_nanos(), a.event));
            popped_c.push((b.time.as_nanos(), b.event));
        }
        prop_assert!(c.pop().is_none());
        prop_assert_eq!(popped_q, popped_c);
    }
}
