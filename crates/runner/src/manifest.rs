//! Machine-readable run manifest (`results/manifest.json`).
//!
//! Records what a `repro` invocation did: worker count, cache
//! location, and per-experiment wall-clock / job-count / cache-hit
//! statistics. Hand-rolled JSON writer — the workspace builds fully
//! offline, so no serde.

use std::io;
use std::path::Path;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::pool::{ExperimentStats, JobFailure};

/// Percentile summary of one traced latency phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePhase {
    /// Phase name (e.g. `seek`, `response`).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Maximum, nanoseconds.
    pub max_ns: u64,
}

/// Per-experiment trace digest folded into the manifest when the run
/// was traced (`repro --trace`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Trace files (one per curve point) summarized.
    pub files: usize,
    /// Total events across the files.
    pub events: u64,
    /// Completed host requests observed.
    pub requests: u64,
    /// Non-empty phase histograms.
    pub phases: Vec<TracePhase>,
}

/// Wall-clock breakdown of one experiment into its pipeline phases,
/// so hot-loop wins (which land in `sim`) stay visible next to the
/// fixed planning and emission costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Planning: decomposing the experiment into jobs (workload
    /// builders are lazy, so this is normally milliseconds).
    pub plan: Duration,
    /// Simulation: running the jobs (the phase the event engine and
    /// hot-loop work actually speed up).
    pub sim: Duration,
    /// Emission: assembling and printing the table and writing CSVs.
    pub emit: Duration,
}

/// One experiment's row in the manifest.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Experiment id.
    pub id: String,
    /// Total jobs (0 for experiments run on the legacy serial path).
    pub jobs: usize,
    /// Jobs served from the result cache.
    pub cache_hits: usize,
    /// Wall-clock time for the experiment.
    pub wall: Duration,
    /// Per-phase wall-clock breakdown, when the caller measured one.
    pub phases: Option<PhaseTimings>,
    /// Trace digest, present only for traced runs.
    pub trace: Option<TraceSummary>,
    /// Jobs that panicked (empty for a clean run).
    pub failures: Vec<JobFailure>,
}

/// Accumulates per-experiment stats and renders them as JSON.
#[derive(Debug)]
pub struct RunManifest {
    jobs: usize,
    cache_dir: Option<String>,
    started_unix: u64,
    started: Instant,
    entries: Vec<ManifestEntry>,
}

impl RunManifest {
    /// Starts a manifest for a run with `jobs` workers and the given
    /// cache directory (`None` when caching is disabled).
    pub fn new(jobs: usize, cache_dir: Option<&Path>) -> Self {
        RunManifest {
            jobs,
            cache_dir: cache_dir.map(|p| p.display().to_string()),
            started_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            started: Instant::now(),
            entries: Vec::new(),
        }
    }

    /// Appends one experiment's statistics.
    pub fn record(&mut self, stats: &ExperimentStats) {
        self.entries.push(ManifestEntry {
            id: stats.id.clone(),
            jobs: stats.jobs,
            cache_hits: stats.cache_hits,
            wall: stats.wall,
            phases: None,
            trace: None,
            failures: stats.failures.clone(),
        });
    }

    /// Whether any recorded experiment had a failed job.
    pub fn has_failures(&self) -> bool {
        self.entries.iter().any(|e| !e.failures.is_empty())
    }

    /// Attaches a per-phase timing breakdown to the recorded
    /// experiment `id`. Returns whether the entry existed.
    pub fn attach_phases(&mut self, id: &str, phases: PhaseTimings) -> bool {
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.phases = Some(phases);
                true
            }
            None => false,
        }
    }

    /// Attaches a trace digest to the recorded experiment `id`.
    /// Returns whether the entry existed.
    pub fn attach_trace(&mut self, id: &str, summary: TraceSummary) -> bool {
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.trace = Some(summary);
                true
            }
            None => false,
        }
    }

    /// The recorded entries, in run order.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Renders the manifest as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"version\": 3,\n");
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        match &self.cache_dir {
            Some(dir) => s.push_str(&format!("  \"cache\": \"{}\",\n", escape(dir))),
            None => s.push_str("  \"cache\": null,\n"),
        }
        s.push_str(&format!("  \"started_unix\": {},\n", self.started_unix));
        s.push_str(&format!(
            "  \"wall_secs\": {:.3},\n",
            self.started.elapsed().as_secs_f64()
        ));
        s.push_str("  \"experiments\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"jobs\": {}, \"cache_hits\": {}, \"wall_secs\": {:.3}",
                escape(&e.id),
                e.jobs,
                e.cache_hits,
                e.wall.as_secs_f64()
            ));
            if !e.failures.is_empty() {
                s.push_str(", \"failures\": [");
                for (j, f) in e.failures.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!(
                        "{{\"point\": {}, \"label\": \"{}\", \"error\": \"{}\"}}",
                        f.point,
                        escape(&f.label),
                        escape(&f.error)
                    ));
                }
                s.push(']');
            }
            if let Some(ph) = &e.phases {
                s.push_str(&format!(
                    ", \"phases\": {{\"plan_secs\": {:.3}, \"sim_secs\": {:.3}, \"emit_secs\": {:.3}}}",
                    ph.plan.as_secs_f64(),
                    ph.sim.as_secs_f64(),
                    ph.emit.as_secs_f64()
                ));
            }
            if let Some(trace) = &e.trace {
                s.push_str(&format!(
                    ", \"trace\": {{\"files\": {}, \"events\": {}, \"requests\": {}, \"phases\": [",
                    trace.files, trace.events, trace.requests
                ));
                for (j, p) in trace.phases.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!(
                        "{{\"phase\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                        escape(&p.name),
                        p.count,
                        p.p50_ns,
                        p.p95_ns,
                        p.p99_ns,
                        p.max_ns
                    ));
                }
                s.push_str("]}");
            }
            s.push('}');
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Renders a fixed-width per-experiment timing summary (the
    /// `repro --timings` table): jobs, cache hits, wall time, and —
    /// when measured — the plan/sim/emit phase breakdown, per
    /// experiment with a closing total.
    pub fn timings_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<24} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8}\n",
            "experiment", "jobs", "cached", "wall", "plan", "sim", "emit"
        ));
        let mut total = Duration::ZERO;
        for e in &self.entries {
            total += e.wall;
            let (jobs, cached) = if e.jobs == 0 {
                ("serial".to_string(), "-".to_string())
            } else {
                (e.jobs.to_string(), format!("{}/{}", e.cache_hits, e.jobs))
            };
            let phases = match &e.phases {
                Some(p) => format!(
                    "{:>7.1}s {:>7.1}s {:>7.1}s",
                    p.plan.as_secs_f64(),
                    p.sim.as_secs_f64(),
                    p.emit.as_secs_f64()
                ),
                None => format!("{:>8} {:>8} {:>8}", "-", "-", "-"),
            };
            s.push_str(&format!(
                "{:<24} {:>7} {:>9} {:>8.1}s {phases}\n",
                e.id,
                jobs,
                cached,
                e.wall.as_secs_f64()
            ));
        }
        s.push_str(&format!(
            "{:<24} {:>7} {:>9} {:>8.1}s\n",
            "total",
            "",
            "",
            total.as_secs_f64()
        ));
        s
    }

    /// Writes the manifest to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(id: &str, jobs: usize, hits: usize) -> ExperimentStats {
        ExperimentStats {
            id: id.to_string(),
            jobs,
            cache_hits: hits,
            wall: Duration::from_millis(1500),
            failures: Vec::new(),
        }
    }

    #[test]
    fn json_shape() {
        let mut m = RunManifest::new(4, Some(Path::new("results/.cache")));
        m.record(&stats("fig3", 32, 0));
        m.record(&stats("fig7", 40, 40));
        let json = m.to_json();
        assert!(json.contains("\"version\": 3"), "{json}");
        assert!(json.contains("\"jobs\": 4"), "{json}");
        assert!(json.contains("\"cache\": \"results/.cache\""), "{json}");
        assert!(
            json.contains(
                "{\"id\": \"fig3\", \"jobs\": 32, \"cache_hits\": 0, \"wall_secs\": 1.500}"
            ),
            "{json}"
        );
        assert!(json.contains("\"id\": \"fig7\""), "{json}");
        assert_eq!(m.entries().len(), 2);
    }

    #[test]
    fn timings_table_shape() {
        let mut m = RunManifest::new(4, None);
        m.record(&stats("fig3", 32, 8));
        m.record(&stats("table1", 0, 0)); // legacy serial path
        let t = m.timings_table();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "{t}");
        assert!(lines[0].starts_with("experiment"), "{t}");
        assert!(
            lines[1].contains("fig3") && lines[1].contains("8/32"),
            "{t}"
        );
        assert!(lines[2].contains("serial") && lines[2].contains('-'), "{t}");
        assert!(
            lines[3].contains("total") && lines[3].contains("3.0s"),
            "{t}"
        );
        // No phases attached: the breakdown columns show dashes.
        assert!(
            lines[0].contains("plan") && lines[0].contains("emit"),
            "{t}"
        );
        assert!(lines[1].matches('-').count() >= 3, "{t}");
    }

    #[test]
    fn attach_phases_fills_breakdown_columns() {
        let mut m = RunManifest::new(4, None);
        m.record(&stats("fig3", 32, 8));
        assert!(!m.attach_phases("nope", PhaseTimings::default()));
        assert!(m.attach_phases(
            "fig3",
            PhaseTimings {
                plan: Duration::from_millis(200),
                sim: Duration::from_millis(1200),
                emit: Duration::from_millis(100),
            }
        ));
        let t = m.timings_table();
        let row = t.lines().nth(1).unwrap();
        assert!(
            row.contains("0.2s") && row.contains("1.2s") && row.contains("0.1s"),
            "{t}"
        );
        let json = m.to_json();
        assert!(
            json.contains(
                "\"phases\": {\"plan_secs\": 0.200, \"sim_secs\": 1.200, \"emit_secs\": 0.100}"
            ),
            "{json}"
        );
    }

    #[test]
    fn attach_trace_folds_digest_into_entry_json() {
        let mut m = RunManifest::new(2, None);
        m.record(&stats("fig3", 8, 0));
        assert!(!m.attach_trace("nope", TraceSummary::default()));
        let summary = TraceSummary {
            files: 8,
            events: 1234,
            requests: 400,
            phases: vec![TracePhase {
                name: "seek".to_string(),
                count: 300,
                p50_ns: 4_000_000,
                p95_ns: 9_000_000,
                p99_ns: 12_000_000,
                max_ns: 15_000_000,
            }],
        };
        assert!(m.attach_trace("fig3", summary.clone()));
        assert_eq!(m.entries()[0].trace.as_ref(), Some(&summary));
        let json = m.to_json();
        assert!(
            json.contains(
                "\"trace\": {\"files\": 8, \"events\": 1234, \"requests\": 400, \"phases\": \
                 [{\"phase\": \"seek\", \"count\": 300, \"p50_ns\": 4000000, \"p95_ns\": 9000000, \
                 \"p99_ns\": 12000000, \"max_ns\": 15000000}]}"
            ),
            "{json}"
        );
    }

    #[test]
    fn failures_are_rendered_and_detected() {
        let mut m = RunManifest::new(2, None);
        let mut s = stats("fig-faults", 5, 0);
        s.failures.push(JobFailure {
            point: 2,
            label: "rate=1e-3 for".to_string(),
            error: "boom \"quoted\"".to_string(),
        });
        m.record(&s);
        assert!(m.has_failures());
        let json = m.to_json();
        assert!(
            json.contains(
                "\"failures\": [{\"point\": 2, \"label\": \"rate=1e-3 for\", \"error\": \"boom \\\"quoted\\\"\"}]"
            ),
            "{json}"
        );
        let clean = RunManifest::new(2, None);
        assert!(!clean.has_failures());
    }

    #[test]
    fn empty_manifest_and_no_cache() {
        let m = RunManifest::new(1, None);
        let json = m.to_json();
        assert!(json.contains("\"cache\": null"), "{json}");
        assert!(json.contains("\"experiments\": []"), "{json}");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
