//! # forhdc-runner
//!
//! Experiment orchestration for the reproduction harness: decomposes
//! an experiment into independent [`SimJob`]s, executes them on a
//! worker pool, and reassembles outputs **in deterministic point
//! order**, so a parallel run's assembled tables are byte-identical to
//! a serial run's. Each job stays single-threaded inside, preserving
//! the simulator's determinism contract (DESIGN.md §6).
//!
//! On top of the pool:
//!
//! * a **content-hash result cache** ([`ResultCache`], default
//!   `results/.cache/`) keyed by the canonical [`JobSpec`], which makes
//!   `repro all` resumable after interruption and incremental across
//!   code-neutral re-runs;
//! * an **observability layer**: live per-job progress lines (stderr),
//!   per-experiment wall-clock / job-count / cache-hit stats
//!   ([`ExperimentStats`]), and a machine-readable run manifest
//!   ([`RunManifest`], `results/manifest.json`).
//!
//! ```
//! use forhdc_runner::{JobOutput, JobSpec, Runner, SimJob};
//!
//! let jobs: Vec<SimJob> = (0..4)
//!     .map(|i| {
//!         let spec = JobSpec::new("demo", i, format!("point{i}")).param("x", i);
//!         SimJob::new(spec, move || {
//!             let mut out = JobOutput::new();
//!             out.push("square", (i * i) as f64);
//!             out
//!         })
//!     })
//!     .collect();
//! let run = Runner::new(2).quiet(true).execute("demo", &jobs);
//! assert_eq!(run.outputs[3].get("square"), 9.0);
//! ```

pub mod cache;
pub mod hash;
pub mod job;
pub mod lazy;
pub mod manifest;
pub mod pool;
pub mod seed;

pub use cache::ResultCache;
pub use job::{JobOutput, JobSpec, SimJob};
pub use lazy::Lazy;
pub use manifest::{ManifestEntry, PhaseTimings, RunManifest, TracePhase, TraceSummary};
pub use pool::{ExperimentRun, ExperimentStats, JobFailure, Runner};
pub use seed::point_seed;
