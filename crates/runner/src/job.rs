//! The job model: one [`SimJob`] per independent simulation point.
//!
//! A job is a canonical, hashable [`JobSpec`] (the cache key and the
//! progress label) plus a closure producing a [`JobOutput`] — a flat
//! list of named `f64` metrics extracted from the simulation's
//! `Report`. Keeping outputs flat and numeric makes them cacheable in
//! a plain text format with **bit-exact** round-tripping, which is
//! what lets a cached run reassemble byte-identical tables.

use crate::hash::Fnv1a;

/// Cache-format / job-model version: bump when the spec encoding or
/// metric extraction changes meaning, so stale cache entries miss.
pub const JOB_MODEL_VERSION: u32 = 3;

/// Canonical description of one simulation point.
///
/// Everything that affects the job's output must be captured in the
/// parameter list (workload spec, system configuration, request
/// counts, seeds, code salt); the fingerprint over it keys the result
/// cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Owning experiment id, e.g. `fig7`.
    pub experiment: String,
    /// Point index in the experiment's deterministic order.
    pub point: usize,
    /// Human-readable label for progress lines, e.g. `unit=64 for_hdc`.
    pub label: String,
    /// Canonical `key = value` parameters, in insertion order.
    pub params: Vec<(String, String)>,
}

impl JobSpec {
    /// Starts a spec for `point` of `experiment`.
    pub fn new(experiment: impl Into<String>, point: usize, label: impl Into<String>) -> Self {
        JobSpec {
            experiment: experiment.into(),
            point,
            label: label.into(),
            params: Vec::new(),
        }
    }

    /// Appends one parameter (builder style).
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// The canonical single-line-per-field encoding hashed for the
    /// cache key and echoed into cache entries for verification.
    pub fn canonical(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('\n', "\\n");
        let mut out = String::new();
        out.push_str(&format!("experiment {}\n", esc(&self.experiment)));
        out.push_str(&format!("point {}\n", self.point));
        out.push_str(&format!("label {}\n", esc(&self.label)));
        for (k, v) in &self.params {
            out.push_str(&format!("param {} = {}\n", esc(k), esc(v)));
        }
        out
    }

    /// Stable content hash of the spec (FNV-1a over the canonical
    /// encoding, salted with [`JOB_MODEL_VERSION`]).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_field(&JOB_MODEL_VERSION.to_le_bytes());
        h.write_field(self.canonical().as_bytes());
        h.finish()
    }
}

/// Named numeric results of one job.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobOutput {
    metrics: Vec<(String, f64)>,
}

impl JobOutput {
    /// An empty output.
    pub fn new() -> Self {
        JobOutput::default()
    }

    /// Appends one metric.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate metric name (each job's metrics must be
    /// unambiguous for table assembly).
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        assert!(
            self.try_get(&name).is_none(),
            "duplicate metric '{name}' in job output"
        );
        self.metrics.push((name, value));
    }

    /// Builder-style [`JobOutput::push`].
    #[must_use]
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.push(name, value);
        self
    }

    /// The metric named `name`.
    ///
    /// # Panics
    ///
    /// Panics when absent — a mismatch between a job's producer and
    /// the experiment's assembly is a programming error.
    pub fn get(&self, name: &str) -> f64 {
        self.try_get(name).unwrap_or_else(|| {
            panic!(
                "job output has no metric '{name}' (have: {:?})",
                self.names()
            )
        })
    }

    /// The metric named `name`, if present.
    pub fn try_get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Metric names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.metrics.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// All metrics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|&(ref n, v)| (n.as_str(), v))
    }
}

/// One schedulable unit: a spec plus the closure that computes it.
///
/// The closure must be a **pure function of the spec**: same spec,
/// same output, regardless of worker, ordering, or repetition. The
/// runner relies on this for cache correctness and byte-identical
/// parallel reassembly.
pub struct SimJob {
    /// The job's canonical description / cache key.
    pub spec: JobSpec,
    /// Computes the job (single-threaded inside).
    pub run: Box<dyn Fn() -> JobOutput + Send + Sync>,
}

impl SimJob {
    /// Wraps a closure with its spec.
    pub fn new(spec: JobSpec, run: impl Fn() -> JobOutput + Send + Sync + 'static) -> Self {
        SimJob {
            spec,
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for SimJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimJob")
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_covers_every_field() {
        let base = JobSpec::new("fig7", 3, "unit=64").param("unit_kb", 64);
        let same = JobSpec::new("fig7", 3, "unit=64").param("unit_kb", 64);
        assert_eq!(base.fingerprint(), same.fingerprint());
        for other in [
            JobSpec::new("fig9", 3, "unit=64").param("unit_kb", 64),
            JobSpec::new("fig7", 4, "unit=64").param("unit_kb", 64),
            JobSpec::new("fig7", 3, "unit=96").param("unit_kb", 64),
            JobSpec::new("fig7", 3, "unit=64").param("unit_kb", 96),
            JobSpec::new("fig7", 3, "unit=64"),
        ] {
            assert_ne!(base.fingerprint(), other.fingerprint(), "{other:?}");
        }
    }

    #[test]
    fn canonical_escapes_newlines() {
        let tricky = JobSpec::new("x", 0, "a\nb").param("k\n", "v\\");
        let c = tricky.canonical();
        assert_eq!(c.lines().count(), 4, "{c:?}");
    }

    #[test]
    fn output_round_trip_and_lookup() {
        let out = JobOutput::new()
            .metric("io_ns", 1.5e9)
            .metric("hit_rate", 0.25);
        assert_eq!(out.get("io_ns"), 1.5e9);
        assert_eq!(out.try_get("missing"), None);
        assert_eq!(out.names(), vec!["io_ns", "hit_rate"]);
    }

    #[test]
    #[should_panic(expected = "duplicate metric")]
    fn duplicate_metric_panics() {
        let mut out = JobOutput::new();
        out.push("x", 1.0);
        out.push("x", 2.0);
    }

    #[test]
    #[should_panic(expected = "no metric")]
    fn missing_metric_panics() {
        JobOutput::new().get("nope");
    }
}
