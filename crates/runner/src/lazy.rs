//! Lazily built, thread-shared values.
//!
//! Experiment job lists share expensive inputs — typically a generated
//! [`Workload`](../../workload) — between the jobs of one row or one
//! experiment. Wrapping the builder in a [`Lazy`] keeps planning cheap:
//! when every job of an experiment hits the result cache, the workload
//! is never generated at all.

use std::sync::{Mutex, OnceLock};

/// A value built on first access by a one-shot closure, shareable
/// across threads (usually behind an `Arc`).
pub struct Lazy<T> {
    cell: OnceLock<T>,
    init: Mutex<Option<Box<dyn FnOnce() -> T + Send>>>,
}

impl<T> Lazy<T> {
    /// Wraps `init`, deferring it until [`Lazy::get`].
    pub fn new(init: impl FnOnce() -> T + Send + 'static) -> Self {
        Lazy {
            cell: OnceLock::new(),
            init: Mutex::new(Some(Box::new(init))),
        }
    }

    /// The value, building it on the first call. Concurrent callers
    /// block until the single builder run finishes.
    pub fn get(&self) -> &T {
        self.cell.get_or_init(|| {
            let f = self
                .init
                .lock()
                .expect("Lazy init lock poisoned")
                .take()
                .expect("Lazy initializer already consumed");
            f()
        })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Lazy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cell.get() {
            Some(v) => f.debug_tuple("Lazy").field(v).finish(),
            None => f.write_str("Lazy(<pending>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn builds_exactly_once_across_threads() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let lazy = Arc::new(Lazy::new(move || {
            c.fetch_add(1, Ordering::SeqCst);
            42u32
        }));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = lazy.clone();
                s.spawn(move || assert_eq!(*l.get(), 42));
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn never_built_when_never_read() {
        let lazy: Lazy<u32> = Lazy::new(|| panic!("must not run"));
        assert!(format!("{lazy:?}").contains("pending"));
    }
}
