//! Job execution: worker pool, deterministic reassembly, progress.
//!
//! Workers pull job indices from a shared atomic cursor and write
//! outputs into per-index slots, so completion order never influences
//! the assembled result — outputs always come back in point order.
//! Each job runs single-threaded inside, preserving the simulator's
//! determinism contract; parallelism exists only **between** jobs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::cache::ResultCache;
use crate::job::{JobOutput, SimJob};

/// One job that panicked (after exhausting any configured retries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Point index of the job within its experiment.
    pub point: usize,
    /// The job's label.
    pub label: String,
    /// The panic message.
    pub error: String,
}

/// Per-experiment execution statistics (also the manifest's rows).
#[derive(Debug, Clone)]
pub struct ExperimentStats {
    /// Experiment id.
    pub id: String,
    /// Total jobs in the experiment.
    pub jobs: usize,
    /// Jobs served from the result cache.
    pub cache_hits: usize,
    /// Wall-clock time for the whole experiment.
    pub wall: Duration,
    /// Jobs that panicked, in point order. Their output slots hold
    /// empty [`JobOutput`]s so sibling points stay aligned.
    pub failures: Vec<JobFailure>,
}

/// The outputs (in point order) and stats of one executed experiment.
#[derive(Debug)]
pub struct ExperimentRun {
    /// One output per job, in the order the jobs were given.
    pub outputs: Vec<JobOutput>,
    /// Execution statistics.
    pub stats: ExperimentStats,
}

/// The orchestrator: a worker-count knob, an optional result cache,
/// and progress reporting.
#[derive(Debug)]
pub struct Runner {
    workers: usize,
    cache: Option<ResultCache>,
    quiet: bool,
    max_retries: usize,
}

impl Runner {
    /// A runner with `workers` parallel workers (clamped to ≥ 1), no
    /// cache, no retries, and progress lines on.
    pub fn new(workers: usize) -> Self {
        Runner {
            workers: workers.max(1),
            cache: None,
            quiet: false,
            max_retries: 0,
        }
    }

    /// Enables the result cache under `dir`.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = Some(ResultCache::new(dir));
        self
    }

    /// Suppresses per-job progress lines (stats are still returned).
    #[must_use]
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Re-runs a panicking job up to `n` extra times before recording
    /// it failed (for transiently flaky jobs; deterministic panics
    /// still fail, just `n` times slower).
    #[must_use]
    pub fn max_retries(mut self, n: usize) -> Self {
        self.max_retries = n;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job of `id`, returning outputs in point order.
    ///
    /// Jobs already in the cache are served from it; the rest execute
    /// on the pool and are stored back afterwards. Output is
    /// **independent of the worker count**: identical specs yield
    /// identical outputs in identical order.
    ///
    /// A panicking job closure does **not** bring the run down: the
    /// panic is caught, the job is retried up to the configured
    /// [`Runner::max_retries`] budget, and a job that never succeeds is
    /// recorded in [`ExperimentStats::failures`] with an empty output in
    /// its slot while every sibling job completes normally.
    pub fn execute(&self, id: &str, jobs: &[SimJob]) -> ExperimentRun {
        let started = Instant::now();
        let total = jobs.len();
        let slots: Vec<OnceLock<JobOutput>> = (0..total).map(|_| OnceLock::new()).collect();
        let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());

        // Phase 1: serve cache hits, collect the remainder.
        let mut pending: Vec<usize> = Vec::new();
        let mut cache_hits = 0usize;
        for (i, job) in jobs.iter().enumerate() {
            match self.cache.as_ref().and_then(|c| c.load(&job.spec)) {
                Some(out) => {
                    slots[i].set(out).expect("slot set twice");
                    cache_hits += 1;
                    self.progress(id, cache_hits, total, &job.spec.label, None);
                }
                None => pending.push(i),
            }
        }

        // Phase 2: execute the misses.
        let done = AtomicUsize::new(cache_hits);
        let run_one = |i: usize| {
            let job = &jobs[i];
            let t0 = Instant::now();
            let mut result = None;
            let mut error = String::new();
            for _ in 0..=self.max_retries {
                match catch_unwind(AssertUnwindSafe(|| (job.run)())) {
                    Ok(out) => {
                        result = Some(out);
                        break;
                    }
                    Err(payload) => error = panic_message(payload),
                }
            }
            let out = match result {
                Some(out) => out,
                None => {
                    // Keep the slot aligned; the failure record is the
                    // source of truth.
                    failures
                        .lock()
                        .expect("failure list poisoned")
                        .push(JobFailure {
                            point: i,
                            label: job.spec.label.clone(),
                            error: error.clone(),
                        });
                    if !self.quiet {
                        eprintln!("  [{id}] FAILED {}: {error}", job.spec.label);
                    }
                    JobOutput::new()
                }
            };
            slots[i].set(out).expect("job slot filled twice");
            let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
            self.progress(id, finished, total, &job.spec.label, Some(t0.elapsed()));
        };
        let workers = self.workers.min(pending.len());
        if workers <= 1 {
            for &i in &pending {
                run_one(i);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::SeqCst);
                        match pending.get(k) {
                            Some(&i) => run_one(i),
                            None => break,
                        }
                    });
                }
            });
        }

        let mut failures = failures.into_inner().expect("failure list poisoned");
        failures.sort_by_key(|f| f.point);

        // Phase 3: persist the fresh results (main thread, after the
        // pool drains, so cache writes never race). Failed jobs left
        // empty placeholder outputs — never cache those.
        if let Some(cache) = &self.cache {
            for &i in &pending {
                if failures.iter().any(|f| f.point == i) {
                    continue;
                }
                let out = slots[i].get().expect("job finished");
                if let Err(e) = cache.store(&jobs[i].spec, out) {
                    eprintln!(
                        "warning: could not cache {} job {i}: {e}",
                        jobs[i].spec.experiment
                    );
                }
            }
        }

        let outputs: Vec<JobOutput> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every job produced an output"))
            .collect();
        ExperimentRun {
            outputs,
            stats: ExperimentStats {
                id: id.to_string(),
                jobs: total,
                cache_hits,
                wall: started.elapsed(),
                failures,
            },
        }
    }

    fn progress(&self, id: &str, done: usize, total: usize, label: &str, took: Option<Duration>) {
        if self.quiet {
            return;
        }
        match took {
            Some(d) => eprintln!("  [{id} {done}/{total}] {label}  {:.2}s", d.as_secs_f64()),
            None => eprintln!("  [{id} {done}/{total}] {label}  (cached)"),
        }
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted message covers essentially all cases).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use std::sync::atomic::AtomicU32;

    fn square_jobs(n: usize, runs: &'static AtomicU32) -> Vec<SimJob> {
        (0..n)
            .map(|i| {
                let spec = JobSpec::new("squares", i, format!("p{i}")).param("i", i);
                SimJob::new(spec, move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    JobOutput::new().metric("sq", (i * i) as f64)
                })
            })
            .collect()
    }

    #[test]
    fn outputs_come_back_in_point_order_regardless_of_workers() {
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let jobs = square_jobs(17, &RUNS);
        let serial = Runner::new(1).quiet(true).execute("squares", &jobs);
        let parallel = Runner::new(8).quiet(true).execute("squares", &jobs);
        assert_eq!(serial.outputs, parallel.outputs);
        for (i, out) in parallel.outputs.iter().enumerate() {
            assert_eq!(out.get("sq"), (i * i) as f64);
        }
        assert_eq!(parallel.stats.jobs, 17);
        assert_eq!(parallel.stats.cache_hits, 0);
    }

    #[test]
    fn cache_second_run_executes_nothing() {
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let dir =
            std::env::temp_dir().join(format!("forhdc_runner_pool_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = square_jobs(6, &RUNS);
        let first = Runner::new(4)
            .quiet(true)
            .cache_dir(&dir)
            .execute("squares", &jobs);
        let ran_after_first = RUNS.load(Ordering::SeqCst);
        assert_eq!(first.stats.cache_hits, 0);
        let second = Runner::new(4)
            .quiet(true)
            .cache_dir(&dir)
            .execute("squares", &jobs);
        assert_eq!(second.stats.cache_hits, 6);
        assert_eq!(
            RUNS.load(Ordering::SeqCst),
            ran_after_first,
            "no job may re-run"
        );
        assert_eq!(first.outputs, second.outputs);
    }

    #[test]
    fn partial_cache_resumes_only_the_remainder() {
        static RUNS: AtomicU32 = AtomicU32::new(0);
        let dir =
            std::env::temp_dir().join(format!("forhdc_runner_pool_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = square_jobs(8, &RUNS);
        // Simulate an interrupted run: only half the jobs completed.
        let cache = ResultCache::new(&dir);
        for job in jobs.iter().take(4) {
            cache.store(&job.spec, &(job.run)()).unwrap();
        }
        RUNS.store(0, Ordering::SeqCst);
        let resumed = Runner::new(4)
            .quiet(true)
            .cache_dir(&dir)
            .execute("squares", &jobs);
        assert_eq!(resumed.stats.cache_hits, 4);
        assert_eq!(RUNS.load(Ordering::SeqCst), 4, "only the missing half runs");
        for (i, out) in resumed.outputs.iter().enumerate() {
            assert_eq!(out.get("sq"), (i * i) as f64);
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let run = Runner::new(4).quiet(true).execute("empty", &[]);
        assert!(run.outputs.is_empty());
        assert_eq!(run.stats.jobs, 0);
    }

    /// n jobs where the middle one always panics.
    fn jobs_with_panicker(n: usize, bad: usize) -> Vec<SimJob> {
        (0..n)
            .map(|i| {
                let spec = JobSpec::new("panicky", i, format!("p{i}")).param("i", i);
                SimJob::new(spec, move || {
                    assert!(i != bad, "job {i} exploded deliberately");
                    JobOutput::new().metric("v", i as f64)
                })
            })
            .collect()
    }

    #[test]
    fn panicking_job_is_recorded_while_siblings_complete() {
        let jobs = jobs_with_panicker(5, 2);
        for workers in [1, 4] {
            let run = Runner::new(workers).quiet(true).execute("panicky", &jobs);
            assert_eq!(run.outputs.len(), 5);
            assert_eq!(run.stats.failures.len(), 1);
            let f = &run.stats.failures[0];
            assert_eq!(f.point, 2);
            assert_eq!(f.label, "p2");
            assert!(
                f.error.contains("exploded deliberately"),
                "got: {}",
                f.error
            );
            // Siblings carry real outputs; the failed slot is empty.
            for (i, out) in run.outputs.iter().enumerate() {
                if i == 2 {
                    assert!(out.iter().next().is_none());
                } else {
                    assert_eq!(out.get("v"), i as f64);
                }
            }
        }
    }

    #[test]
    fn failed_jobs_are_never_cached() {
        let dir =
            std::env::temp_dir().join(format!("forhdc_runner_pool_fail_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = jobs_with_panicker(3, 1);
        let first = Runner::new(2)
            .quiet(true)
            .cache_dir(&dir)
            .execute("panicky", &jobs);
        assert_eq!(first.stats.failures.len(), 1);
        // On rerun, good jobs hit the cache and the bad one re-runs
        // (and fails again) instead of being served a bogus entry.
        let second = Runner::new(2)
            .quiet(true)
            .cache_dir(&dir)
            .execute("panicky", &jobs);
        assert_eq!(second.stats.cache_hits, 2);
        assert_eq!(second.stats.failures.len(), 1);
    }

    #[test]
    fn transient_panic_succeeds_within_retry_budget() {
        static ATTEMPTS: AtomicU32 = AtomicU32::new(0);
        let spec = JobSpec::new("flaky", 0, "p0").param("i", 0u64);
        let jobs = vec![SimJob::new(spec, || {
            // Fails twice, then succeeds.
            assert!(ATTEMPTS.fetch_add(1, Ordering::SeqCst) >= 2, "flaky");
            JobOutput::new().metric("ok", 1.0)
        })];
        let run = Runner::new(1)
            .quiet(true)
            .max_retries(2)
            .execute("flaky", &jobs);
        assert!(run.stats.failures.is_empty());
        assert_eq!(run.outputs[0].get("ok"), 1.0);
        assert_eq!(ATTEMPTS.load(Ordering::SeqCst), 3);
    }
}
