//! Per-point RNG seed derivation.
//!
//! Every experiment point derives its workload seed as
//! `hash(experiment id, point index)`, so seeds are stable under
//! experiment **reordering** (adding, removing, or resequencing
//! experiments never shifts another experiment's seeds) and identical
//! between the serial and parallel execution paths, which both call
//! this one helper.

use crate::hash::Fnv1a;

/// Deterministic seed for point `point` of experiment `experiment`.
///
/// Stable across runs, platforms, and Rust versions (FNV-1a, not
/// `DefaultHasher`).
pub fn point_seed(experiment: &str, point: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.write_field(experiment.as_bytes());
    h.write_field(&(point as u64).to_le_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_distinct() {
        assert_eq!(point_seed("fig7", 3), point_seed("fig7", 3));
        assert_ne!(point_seed("fig7", 3), point_seed("fig7", 4));
        assert_ne!(point_seed("fig7", 3), point_seed("fig8", 3));
        // Name/index framing cannot collide by concatenation.
        assert_ne!(point_seed("fig1", 0), point_seed("fig", 1));
    }
}
