//! Stable content hashing (FNV-1a 64), shared by the cache key and the
//! per-point seed derivation. Deliberately **not** `DefaultHasher`:
//! cache keys and seeds must be stable across Rust versions and runs.

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a length-prefixed byte string (prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_field(&mut self, bytes: &[u8]) -> &mut Self {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes)
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_vectors() {
        // Well-known FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_framing_disambiguates() {
        let mut a = Fnv1a::new();
        a.write_field(b"ab").write_field(b"c");
        let mut b = Fnv1a::new();
        b.write_field(b"a").write_field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
