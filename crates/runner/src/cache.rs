//! The content-hash result cache.
//!
//! One file per job under the cache directory (default
//! `results/.cache/`), named by the spec fingerprint:
//! `<experiment>-<fingerprint-hex>.job`. Entries echo the full
//! canonical spec and store each metric as IEEE-754 bit patterns, so a
//! cache hit reproduces the original output **bit-exactly** and a
//! fingerprint collision is detected (spec echo mismatch → miss)
//! rather than silently served.
//!
//! Interrupted runs resume for free: every completed job left a file,
//! so the next run re-executes only the remainder.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::job::{JobOutput, JobSpec};

const HEADER: &str = "forhdc-runner-cache v1";

/// A directory of cached job outputs.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (without creating) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, spec: &JobSpec) -> PathBuf {
        // The experiment id prefix keeps the directory greppable; the
        // fingerprint is the actual key.
        let safe: String = spec
            .experiment
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir
            .join(format!("{safe}-{:016x}.job", spec.fingerprint()))
    }

    /// Loads the cached output for `spec`, if present and valid.
    ///
    /// Corrupt, truncated, or colliding entries are treated as misses
    /// **and quarantined**: the bad file is renamed to `*.corrupt` so
    /// the slot recomputes cleanly while the evidence survives for
    /// inspection. A missing file is an ordinary miss.
    pub fn load(&self, spec: &JobSpec) -> Option<JobOutput> {
        let path = self.entry_path(spec);
        let text = fs::read_to_string(&path).ok()?;
        match Self::parse(&text, spec) {
            Some(out) => Some(out),
            None => {
                let _ = fs::rename(&path, path.with_extension("job.corrupt"));
                None
            }
        }
    }

    /// Parses one cache entry, returning `None` on any header, format,
    /// or spec-echo mismatch.
    fn parse(text: &str, spec: &JobSpec) -> Option<JobOutput> {
        let mut lines = text.lines();
        if lines.next()? != HEADER {
            return None;
        }
        // Verify the spec echo byte-for-byte (collision / stale guard).
        let mut echoed = String::new();
        let mut out = JobOutput::new();
        for line in lines {
            if let Some(spec_line) = line.strip_prefix("spec ") {
                echoed.push_str(spec_line);
                echoed.push('\n');
            } else if let Some(metric) = line.strip_prefix("metric ") {
                let (name, rest) = metric.rsplit_once(" = ")?;
                let bits = u64::from_str_radix(rest.split_whitespace().next()?, 16).ok()?;
                out.push(name, f64::from_bits(bits));
            } else if !line.is_empty() {
                return None;
            }
        }
        (echoed == spec.canonical()).then_some(out)
    }

    /// Stores `output` for `spec`, creating the directory as needed.
    ///
    /// The entry is written to a temporary file and renamed into
    /// place, so a crash mid-write never leaves a half-entry behind.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the entry.
    pub fn store(&self, spec: &JobSpec, output: &JobOutput) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(spec);
        let tmp = path.with_extension("job.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            writeln!(f, "{HEADER}")?;
            for line in spec.canonical().lines() {
                writeln!(f, "spec {line}")?;
            }
            for (name, value) in output.iter() {
                // Bit pattern first (authoritative), decimal for humans.
                writeln!(f, "metric {name} = {:016x} ({value})", value.to_bits())?;
            }
        }
        fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("forhdc_runner_cache_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn spec() -> JobSpec {
        JobSpec::new("fig7", 2, "unit=32 segm")
            .param("unit_kb", 32)
            .param("config", "segm")
    }

    #[test]
    fn store_load_round_trips_bit_exactly() {
        let cache = ResultCache::new(tmpdir("roundtrip"));
        let out = JobOutput::new()
            .metric("io_ns", 1.234_567_890_123e12)
            .metric("hit_rate", 0.1 + 0.2) // a classically non-representable sum
            .metric("neg", -0.0);
        cache.store(&spec(), &out).unwrap();
        let back = cache.load(&spec()).expect("hit");
        assert_eq!(back, out);
        assert_eq!(back.get("hit_rate").to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.get("neg").to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn different_spec_misses() {
        let cache = ResultCache::new(tmpdir("miss"));
        cache
            .store(&spec(), &JobOutput::new().metric("x", 1.0))
            .unwrap();
        let other = spec().param("extra", 1);
        assert!(cache.load(&other).is_none());
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let cache = ResultCache::new(tmpdir("corrupt"));
        cache
            .store(&spec(), &JobOutput::new().metric("x", 1.0))
            .unwrap();
        // Truncate the entry behind the cache's back.
        let path = cache.entry_path(&spec());
        fs::write(&path, "forhdc-runner-cache v1\nspec experiment fig7\n").unwrap();
        assert!(cache.load(&spec()).is_none());
        // And a wrong header.
        fs::write(&path, "something else\n").unwrap();
        assert!(cache.load(&spec()).is_none());
    }

    #[test]
    fn corrupt_entry_is_quarantined_then_recomputable() {
        let cache = ResultCache::new(tmpdir("quarantine"));
        let out = JobOutput::new().metric("x", 1.0);
        cache.store(&spec(), &out).unwrap();
        let path = cache.entry_path(&spec());
        fs::write(&path, "forhdc-runner-cache v1\ngarbage\n").unwrap();
        // The bad entry is moved aside, not left to fail forever.
        assert!(cache.load(&spec()).is_none());
        assert!(!path.exists(), "corrupt entry must be moved aside");
        assert!(path.with_extension("job.corrupt").exists());
        // A fresh store over the quarantined slot works normally.
        cache.store(&spec(), &out).unwrap();
        assert_eq!(cache.load(&spec()), Some(out));
    }

    #[test]
    fn missing_dir_is_a_miss_not_an_error() {
        let cache = ResultCache::new(tmpdir("absent"));
        assert!(cache.load(&spec()).is_none());
    }
}
